// Virtual-time CPU accounting.
//
// The paper's testbed pairs a fast server (dual 933 MHz PIII) with a slow
// client (450 MHz PII), and several results hinge on where computation
// happens: GoToMyPC's expensive server-side compression, ICA's client-side
// resize, the local PC rendering pages on the slow client. A CpuAccount
// serializes work on one host: Charge() advances a busy-until watermark and
// returns when the work completes in virtual time.
#ifndef THINC_SRC_UTIL_CPU_H_
#define THINC_SRC_UTIL_CPU_H_

#include <algorithm>
#include <cstdint>

#include "src/util/event_loop.h"
#include "src/util/logging.h"

namespace thinc {

class CpuAccount {
 public:
  // `speed` is a relative speed factor: work costed for a 1.0x host takes
  // cost/speed on this host.
  CpuAccount(EventLoop* loop, double speed) : loop_(loop), speed_(speed) {
    THINC_CHECK(speed > 0);
  }

  // Charges `cost` microseconds of reference-speed work starting no earlier
  // than now; returns the completion time.
  SimTime Charge(double cost_us) {
    SimTime start = std::max(loop_->now(), busy_until_);
    SimTime duration = static_cast<SimTime>(cost_us / speed_ + 0.5);
    busy_until_ = start + duration;
    total_busy_ += duration;
    return busy_until_;
  }

  SimTime busy_until() const { return busy_until_; }
  SimTime total_busy() const { return total_busy_; }
  double speed() const { return speed_; }

 private:
  EventLoop* loop_;
  double speed_;
  SimTime busy_until_ = 0;
  SimTime total_busy_ = 0;
};

// Reference-speed cost constants (microseconds) used across systems. Values
// are calibrated to the paper-era hardware: roughly a 1 GHz class machine.
namespace cpucost {

// Per-byte costs of the codecs (encode side; decode is cheaper).
inline constexpr double kRc4PerByte = 0.004;
inline constexpr double kRlePerByte = 0.008;
inline constexpr double kLzssPerByte = 0.05;
inline constexpr double kPngLikePerByte = 0.04;
inline constexpr double kHextilePerByte = 0.02;
// GoToMyPC-style "complex compression algorithms ... at the expense of high
// server utilization" (Section 8.3).
inline constexpr double kHeavyPerByte = 1.5;
inline constexpr double kDecodePerByte = 0.01;

// Per-pixel costs.
inline constexpr double kRenderPerPixel = 0.008;     // software rasterization
inline constexpr double kResamplePerPixel = 0.015;   // Fant resample (server)
inline constexpr double kClientResamplePerPixel = 0.08;  // naive client resize
inline constexpr double kPixelAnalysisPerPixel = 0.02;   // Sun Ray inference
inline constexpr double kColorConvertPerPixel = 0.015;   // sw YUV->RGB

}  // namespace cpucost

}  // namespace thinc

#endif  // THINC_SRC_UTIL_CPU_H_
