// Virtual-time CPU accounting.
//
// The paper's testbed pairs a fast server (dual 933 MHz PIII) with a slow
// client (450 MHz PII), and several results hinge on where computation
// happens: GoToMyPC's expensive server-side compression, ICA's client-side
// resize, the local PC rendering pages on the slow client. A CpuAccount
// models one host's compute: Charge() books work onto a core and returns
// when the work completes in virtual time.
//
// Multi-core model: a host has K cores, each with its own busy-until
// watermark. A charge lands on the least-loaded core (earliest watermark;
// lowest index on ties — fully deterministic), starts at
// max(now, that core's watermark), and runs for cost/speed. Work units are
// independent by default; dependent work is serialized by the caller's own
// issue order (e.g. a server's flush loop only charges the next encode after
// the previous one completed, so per-session pipelines never self-overlap).
// ChargeParallel() splits one large work item (a RAW/PNG encode) into
// per-band slices that land on distinct cores and complete at the max slice
// completion. With K=1 every path degenerates exactly to the historical
// single-watermark behavior.
//
// Aggregates: busy_until() is the max watermark (all charged work done —
// host lag, client "everything processed" stamps); earliest_free() is the
// min watermark (when the next independent unit could start — the right
// read for "can the compressor take another frame?" flow-control checks).
// On a single core the two coincide, which is why the historical call sites
// could use busy_until() for both.
//
// Determinism invariant: core count and slice scheduling only move virtual
// time (completion stamps); they never decide WHAT bytes are produced, so a
// same-seed run is wire-identical at any K (see DESIGN.md §12).
#ifndef THINC_SRC_UTIL_CPU_H_
#define THINC_SRC_UTIL_CPU_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/event_loop.h"
#include "src/util/logging.h"

namespace thinc {

class CpuAccount {
 public:
  // `speed` is a relative speed factor: work costed for a 1.0x host takes
  // cost/speed on this host. `cores` is the number of independent execution
  // units (default 1: the historical single-watermark host).
  CpuAccount(EventLoop* loop, double speed, int cores = 1)
      : loop_(loop), speed_(speed), cores_(static_cast<size_t>(cores)) {
    THINC_CHECK(speed > 0);
    THINC_CHECK(cores >= 1);
  }

  // Charges `cost` microseconds of reference-speed work starting no earlier
  // than now, on the least-loaded core (lowest index on ties); returns the
  // completion time.
  SimTime Charge(double cost_us) { return ChargeOnCore(PickCore(), cost_us); }

  // Charges one work item split into `slices` equal slices that may run
  // concurrently: each slice is placed with the same least-loaded rule, so
  // up to `cores()` slices overlap and any excess wraps onto the earliest
  // cores. Returns the completion time of the LAST slice (the item is done
  // only when every band is). On a single core the slices serialize and the
  // fractional-carry arithmetic makes the result bit-identical to one
  // Charge() of the whole cost.
  SimTime ChargeParallel(double cost_us, int slices) {
    THINC_CHECK(slices >= 1);
    ++parallel_charges_;
    SimTime done = 0;
    for (int i = 0; i < slices; ++i) {
      // Slice costs telescope to exactly cost_us, so splitting never
      // creates or destroys work relative to a single charge.
      const double slice = cost_us * (i + 1) / slices - cost_us * i / slices;
      done = std::max(done, Charge(slice));
    }
    return done;
  }

  // Completion time of ALL work charged so far (max core watermark).
  SimTime busy_until() const {
    SimTime t = 0;
    for (const Core& c : cores_) {
      t = std::max(t, c.busy_until);
    }
    return t;
  }
  // Earliest time a core can start new work (min core watermark). This is
  // the aggregate flow-control checks want: "is a core free soon?" — with
  // K=1 it equals busy_until().
  SimTime earliest_free() const {
    SimTime t = cores_[0].busy_until;
    for (const Core& c : cores_) {
      t = std::min(t, c.busy_until);
    }
    return t;
  }
  // How far behind `now` the most-loaded core runs (0 when idle). The
  // host-lag metric overload controllers watch.
  SimTime max_core_lag(SimTime now) const {
    return std::max<SimTime>(0, busy_until() - now);
  }
  SimTime core_busy_until(int core) const {
    return cores_[static_cast<size_t>(core)].busy_until;
  }

  // Busy microseconds summed over all cores (a K-core host fully busy for
  // one second accumulates K seconds).
  SimTime total_busy() const { return total_busy_; }
  double speed() const { return speed_; }
  int cores() const { return static_cast<int>(cores_.size()); }
  int64_t charges() const { return charges_; }
  int64_t parallel_charges() const { return parallel_charges_; }

 private:
  struct Core {
    SimTime busy_until = 0;
    // Fractional microseconds not yet materialized as duration. Each charge
    // books floor(pending + 0.5) and carries the remainder, so repeated
    // sub-microsecond charges (translate bookkeeping, tiny encodes)
    // accumulate their true cost instead of rounding to free work, and any
    // split of one cost into slices books exactly the same total.
    double carry_us = 0;
  };

  // Least-loaded core, lowest index on ties — deterministic regardless of
  // how the loads were produced.
  size_t PickCore() const {
    size_t best = 0;
    for (size_t i = 1; i < cores_.size(); ++i) {
      if (cores_[i].busy_until < cores_[best].busy_until) {
        best = i;
      }
    }
    return best;
  }

  SimTime ChargeOnCore(size_t core, double cost_us) {
    Core& c = cores_[core];
    ++charges_;
    SimTime start = std::max(loop_->now(), c.busy_until);
    const double pending = cost_us / speed_ + c.carry_us;
    // floor(x + 0.5): round half up, remainder in [-0.5, 0.5).
    SimTime duration = static_cast<SimTime>(pending + 0.5);
    if (static_cast<double>(duration) > pending + 0.5) {
      --duration;  // static_cast truncates toward zero; fix negative pending
    }
    c.carry_us = pending - static_cast<double>(duration);
    c.busy_until = start + duration;
    total_busy_ += duration;
    return c.busy_until;
  }

  EventLoop* loop_;
  double speed_;
  std::vector<Core> cores_;
  SimTime total_busy_ = 0;
  int64_t charges_ = 0;
  int64_t parallel_charges_ = 0;
};

// Explicitly multi-core host: same account, but the core count is a
// required constructor argument (FleetHost and benches use this to make the
// K in "K-core host" visible at the construction site).
class MultiCoreCpuAccount : public CpuAccount {
 public:
  MultiCoreCpuAccount(EventLoop* loop, double speed, int cores)
      : CpuAccount(loop, speed, cores) {}
};

// Reference-speed cost constants (microseconds) used across systems. Values
// are calibrated to the paper-era hardware: roughly a 1 GHz class machine.
namespace cpucost {

// Per-byte costs of the codecs (encode side; decode is cheaper).
inline constexpr double kRc4PerByte = 0.004;
inline constexpr double kRlePerByte = 0.008;
inline constexpr double kLzssPerByte = 0.05;
inline constexpr double kPngLikePerByte = 0.04;
inline constexpr double kHextilePerByte = 0.02;
// GoToMyPC-style "complex compression algorithms ... at the expense of high
// server utilization" (Section 8.3).
inline constexpr double kHeavyPerByte = 1.5;
inline constexpr double kDecodePerByte = 0.01;

// Per-pixel costs.
inline constexpr double kRenderPerPixel = 0.008;     // software rasterization
inline constexpr double kResamplePerPixel = 0.015;   // Fant resample (server)
inline constexpr double kClientResamplePerPixel = 0.08;  // naive client resize
inline constexpr double kPixelAnalysisPerPixel = 0.02;   // Sun Ray inference
inline constexpr double kColorConvertPerPixel = 0.015;   // sw YUV->RGB
inline constexpr double kDeltaDiffPerPixel = 0.02;       // temporal block diff

}  // namespace cpucost

}  // namespace thinc

#endif  // THINC_SRC_UTIL_CPU_H_
