#include "src/util/event_loop.h"

#include <utility>

namespace thinc {

uint64_t EventLoop::global_seq_ = 0;

EventLoop::EventId EventLoop::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  EventId id = next_id_++;
  queue_.emplace(Key{when, id}, std::move(fn));
  return id;
}

bool EventLoop::Cancel(EventId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->first.id == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

size_t EventLoop::RunUntil(SimTime deadline) {
  size_t fired = 0;
  while (!queue_.empty()) {
    auto it = queue_.begin();
    if (it->first.when > deadline) {
      break;
    }
    now_ = it->first.when;
    std::function<void()> fn = std::move(it->second);
    queue_.erase(it);
    ++global_seq_;
    ++fired_count_;
    fn();
    ++fired;
  }
  if (now_ < deadline && deadline != INT64_MAX) {
    now_ = deadline;
  }
  return fired;
}

bool EventLoop::Step() {
  if (queue_.empty()) {
    return false;
  }
  auto it = queue_.begin();
  now_ = it->first.when;
  std::function<void()> fn = std::move(it->second);
  queue_.erase(it);
  ++global_seq_;
  ++fired_count_;
  fn();
  return true;
}

}  // namespace thinc
