#include "src/util/event_loop.h"

#include <algorithm>
#include <utility>

namespace thinc {

uint64_t EventLoop::global_seq_ = 0;

EventLoop::EventId EventLoop::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return id;
}

bool EventLoop::Cancel(EventId id) {
  if (live_.erase(id) == 0) {
    return false;
  }
  ++cancelled_count_;
  // The entry stays in the heap as a tombstone until it surfaces; once the
  // dead outnumber the living, one O(n) sweep reclaims them (amortized O(1)
  // per cancel).
  if (heap_.size() > 64 && heap_.size() > 2 * live_.size()) {
    Compact();
  }
  return true;
}

void EventLoop::Compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) {
                               return live_.find(e.id) == live_.end();
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventLoop::SkimTombstones() {
  while (!heap_.empty() && live_.find(heap_.front().id) == live_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void EventLoop::FireTop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  live_.erase(top.id);
  now_ = top.when;
  ++global_seq_;
  ++fired_count_;
  top.fn();
}

size_t EventLoop::RunUntil(SimTime deadline) {
  size_t fired = 0;
  for (;;) {
    SkimTombstones();
    if (heap_.empty() || heap_.front().when > deadline) {
      break;
    }
    FireTop();
    ++fired;
  }
  if (now_ < deadline && deadline != INT64_MAX) {
    now_ = deadline;
  }
  return fired;
}

bool EventLoop::Step() {
  SkimTombstones();
  if (heap_.empty()) {
    return false;
  }
  FireTop();
  return true;
}

}  // namespace thinc
