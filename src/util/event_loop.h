// Discrete-event simulator: a virtual clock plus an ordered event queue.
//
// Every component in the reproduction (network links, flush timers, video
// frame sources, CPU busy-time accounting) runs against this loop, which
// makes whole-system experiments deterministic and lets us emulate the
// paper's testbed timing (bandwidth, RTT, CPU speeds) without wall-clock
// dependence.
#ifndef THINC_SRC_UTIL_EVENT_LOOP_H_
#define THINC_SRC_UTIL_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

namespace thinc {

// Virtual time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000000;

class EventLoop {
 public:
  using EventId = uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at now() + delay (delay clamped to >= 0).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, std::function<void()> fn);
  EventId Schedule(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  // Cancels a pending event. Returns false if already fired or unknown.
  bool Cancel(EventId id);

  // Runs until the queue is empty or `deadline` is passed (events scheduled
  // exactly at the deadline still run). Returns the number of events fired.
  size_t RunUntil(SimTime deadline);
  size_t Run() { return RunUntil(INT64_MAX); }

  // Runs at most one event; returns false if the queue is empty.
  bool Step();

  bool has_pending() const { return !queue_.empty(); }
  size_t pending_count() const { return queue_.size(); }

  // Events fired by THIS loop.
  uint64_t fired_count() const { return fired_count_; }

  // Monotonically increasing sequence of fired events, shared across every
  // loop in the process (the simulation is single-threaded). Incremented
  // just before each event's callback runs; 0 before any event has fired.
  // Telemetry attaches it to each timestamp so records taken at the same
  // virtual time order deterministically in trace exports.
  static uint64_t current_seq() { return global_seq_; }

 private:
  struct Key {
    SimTime when;
    EventId id;
    bool operator<(const Key& o) const {
      return when != o.when ? when < o.when : id < o.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t fired_count_ = 0;
  std::map<Key, std::function<void()>> queue_;

  static uint64_t global_seq_;
};

}  // namespace thinc

#endif  // THINC_SRC_UTIL_EVENT_LOOP_H_
