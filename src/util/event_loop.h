// Discrete-event simulator: a virtual clock plus an ordered event queue.
//
// Every component in the reproduction (network links, flush timers, video
// frame sources, CPU busy-time accounting) runs against this loop, which
// makes whole-system experiments deterministic and lets us emulate the
// paper's testbed timing (bandwidth, RTT, CPU speeds) without wall-clock
// dependence.
//
// The queue is a binary heap ordered by (when, id) with lazy deletion:
// push/pop are plain vector-heap sifts with no per-swap bookkeeping (the
// hot path — the simulator is mostly schedule/fire churn), and Cancel() is
// an O(1) amortized erase from the live-id set, with the dead entry
// discarded when it surfaces (or at a compaction sweep once tombstones
// outnumber live events). The original std::map implementation paid a
// malloc per event and a linear id scan per Cancel; bench_simcore keeps
// that queue around as the baseline. Because ids increase monotonically,
// (when, id) order reproduces the map's exact FIFO-at-same-time firing
// order, so the swap is invisible to every same-seed run.
#ifndef THINC_SRC_UTIL_EVENT_LOOP_H_
#define THINC_SRC_UTIL_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace thinc {

// Virtual time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000000;

class EventLoop {
 public:
  using EventId = uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at now() + delay (delay clamped to >= 0).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, std::function<void()> fn);
  EventId Schedule(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  // Cancels a pending event. Returns false if already fired or unknown.
  bool Cancel(EventId id);

  // Runs until the queue is empty or `deadline` is passed (events scheduled
  // exactly at the deadline still run). Returns the number of events fired.
  size_t RunUntil(SimTime deadline);
  size_t Run() { return RunUntil(INT64_MAX); }

  // Runs at most one event; returns false if the queue is empty.
  bool Step();

  bool has_pending() const { return !live_.empty(); }
  size_t pending_count() const { return live_.size(); }

  // Events fired by THIS loop.
  uint64_t fired_count() const { return fired_count_; }
  // Events cancelled before firing on THIS loop.
  uint64_t cancelled_count() const { return cancelled_count_; }

  // Monotonically increasing sequence of fired events, shared across every
  // loop in the process (the simulation is single-threaded). Incremented
  // just before each event's callback runs; 0 before any event has fired.
  // Telemetry attaches it to each timestamp so records taken at the same
  // virtual time order deterministically in trace exports.
  static uint64_t current_seq() { return global_seq_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };

  // std::push_heap/pop_heap build a max-heap, so "later fires first" puts
  // the earliest (when, id) on top.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return b.when != a.when ? b.when < a.when : b.id < a.id;
    }
  };

  // Discards cancelled entries sitting on top of the heap, so heap_.front()
  // (if any) is the next live event.
  void SkimTombstones();
  // Drops every cancelled entry and rebuilds the heap in O(n).
  void Compact();

  // Advances the clock to the top event, removes it, and runs its callback.
  // The single pop path shared by Step() and RunUntil(). Callers ensure a
  // live event exists (has_pending() after SkimTombstones()).
  void FireTop();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t fired_count_ = 0;
  uint64_t cancelled_count_ = 0;
  std::vector<Entry> heap_;
  // Ids scheduled but not yet fired or cancelled. A heap entry whose id has
  // left this set is a tombstone.
  std::unordered_set<EventId> live_;

  static uint64_t global_seq_;
};

}  // namespace thinc

#endif  // THINC_SRC_UTIL_EVENT_LOOP_H_
