// Region: a set of pixels represented as a y-x banded list of disjoint
// rectangles, in the style of the X server's miRegion machinery.
//
// Invariants (checked by Validate() and relied upon throughout):
//   * Rectangles are non-empty and pairwise disjoint.
//   * Rectangles are sorted by (y, x).
//   * Rectangles within one horizontal band share identical y extents and
//     do not touch horizontally (touching rects are coalesced).
//   * Vertically adjacent bands with identical x-structure are coalesced.
//
// This canonical form makes equality comparison structural and keeps the
// rect count near-minimal, which matters because THINC protocol commands
// carry their destination as a region.
#ifndef THINC_SRC_UTIL_REGION_H_
#define THINC_SRC_UTIL_REGION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/geometry.h"

namespace thinc {

class Region {
 public:
  Region() = default;
  explicit Region(const Rect& r) {
    if (!r.empty()) {
      rects_.push_back(r);
    }
  }
  // Builds the canonical union of an arbitrary rect list.
  static Region FromRects(std::span<const Rect> rects);

  bool empty() const { return rects_.empty(); }
  int64_t Area() const;
  const std::vector<Rect>& rects() const { return rects_; }
  size_t rect_count() const { return rects_.size(); }

  // Bounding box (empty Rect if region is empty).
  Rect Bounds() const;

  bool Contains(Point p) const;
  // True if `r` is entirely inside the region.
  bool ContainsRect(const Rect& r) const;
  bool Intersects(const Rect& r) const;
  bool Intersects(const Region& other) const;

  Region Union(const Region& other) const;
  Region Intersect(const Region& other) const;
  Region Subtract(const Region& other) const;
  Region Intersect(const Rect& r) const { return Intersect(Region(r)); }
  Region Subtract(const Rect& r) const { return Subtract(Region(r)); }
  Region Union(const Rect& r) const { return Union(Region(r)); }

  Region Translated(int32_t dx, int32_t dy) const;

  // Scales every coordinate by num/den with outward rounding so that the
  // scaled region covers at least the scaled area (used by server resize).
  Region Scaled(int32_t num, int32_t den) const;

  bool operator==(const Region& other) const { return rects_ == other.rects_; }

  // Checks the banding invariants; used by tests.
  bool Validate() const;

  std::string ToString() const;

 private:
  enum class Op { kUnion, kIntersect, kSubtract };
  static Region Combine(const Region& a, const Region& b, Op op);

  std::vector<Rect> rects_;
};

}  // namespace thinc

#endif  // THINC_SRC_UTIL_REGION_H_
