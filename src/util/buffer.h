// Zero-copy buffer primitives shared by the whole server stack.
//
// THINC's offscreen awareness (Section 4.1) mandates queue *copy* — not
// move — on pixmap-to-pixmap copies, and the web workload composites every
// page through offscreen pixmaps. Deep-copying full pixel payloads on every
// queue copy, re-copying every encoded frame by value, and shuffling the
// wire byte-by-byte made server-side data movement the scaling bottleneck.
// This header removes it:
//
//   * PixelBuffer — a ref-counted, copy-on-write pixel payload. Cloning a
//     RAW command (the offscreen queue-copy operation) shares one backing
//     allocation; a genuine mutation detaches. The shared storage also
//     carries a small encode-result cache, so commands sharing a payload
//     (clones, broadcast fan-out) encode a given (rect, region, codec)
//     combination exactly once.
//   * ByteBuffer — a ref-counted immutable view of encoded bytes. Frames
//     are encoded once and handed around by reference: scheduler, flush
//     path, send queues, and every viewer of a shared session see the same
//     backing bytes.
//   * FrameArena — a recycling pool of frame slabs; a flush encodes into a
//     recycled slab instead of a fresh allocation once steady state is
//     reached.
//   * SegmentQueue — an iovec-style queue of buffer views that replaces the
//     per-byte std::deque<uint8_t> send buffers; MSS-sized wire segments
//     are sliced out of queued frames without copying.
//
// Everything here is single-threaded, like the simulation. All operations
// are instrumented through BufferStats so benchmarks can report bytes
// memcpy'd, allocation counts, and peak resident payload bytes; the global
// zero-copy mode can be disabled to emulate the old eager-copy behaviour
// for A/B measurement (copying never changes wire bytes or virtual time).
#ifndef THINC_SRC_UTIL_BUFFER_H_
#define THINC_SRC_UTIL_BUFFER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/util/pixel.h"

namespace thinc {

// Counters for buffer traffic (single-threaded simulation; plain fields).
struct BufferStats {
  int64_t allocations = 0;       // backing stores created
  int64_t allocated_bytes = 0;   // bytes those stores hold (at tracking time)
  int64_t copies = 0;            // instrumented memcpy events
  int64_t copied_bytes = 0;      // bytes physically copied between buffers
  int64_t shares = 0;            // deep copies avoided by ref-count sharing
  int64_t cow_detaches = 0;      // CoW writes that had to materialize a copy
  int64_t arena_reuses = 0;      // frame slabs recycled instead of allocated
  int64_t raw_encodes = 0;       // RAW payload encodes actually performed
  int64_t encode_charges = 0;    // RAW encode CPU charges paid by a server
                                 // (shared-session viewers that reuse or wait
                                 // for another viewer's encode don't charge)
  int64_t payload_encode_hits = 0;  // encodes served from a payload's cache
  int64_t frame_cache_hits = 0;  // flush-level shared-frame cache hits
  int64_t live_payload_bytes = 0;  // currently resident buffer bytes
  int64_t peak_payload_bytes = 0;  // high-water mark since Reset()

  static BufferStats& Get();
  // Resets all counters; the peak restarts from the current live bytes.
  void Reset();

  void NoteCopy(int64_t bytes) {
    ++copies;
    copied_bytes += bytes;
  }
  void TrackLive(int64_t delta) {
    live_payload_bytes += delta;
    if (live_payload_bytes > peak_payload_bytes) {
      peak_payload_bytes = live_payload_bytes;
    }
  }
};

// Global mode knob (bench ablation only): when disabled, Share() operations
// degrade to eager deep copies and segment pops always gather — the
// pre-zero-copy behaviour. Never affects wire bytes or virtual time.
void SetZeroCopyMode(bool enabled);
bool ZeroCopyMode();

class ByteBuffer;

// One cached encode result attached to a pixel payload.
struct CachedEncode;

namespace internal {

struct ByteStorage {
  std::vector<uint8_t> bytes;

  ByteStorage();
  ~ByteStorage();
  ByteStorage(const ByteStorage&) = delete;
  ByteStorage& operator=(const ByteStorage&) = delete;

  // Records bytes.size() into the live/peak accounting (diff-updates, so it
  // is safe to call again after the vector grew or was recycled).
  void Track();

 private:
  int64_t tracked_ = 0;
};

struct PixelStorage {
  std::vector<Pixel> pixels;
  // Content identity: unique per backing store, bumped on every mutable
  // access. Encode caches key on it, so a stale entry can never match.
  uint64_t content_id = 0;
  // Encode results for this payload, keyed by (rect origin, region, codec
  // flags, content id). Shared by every command referencing the payload.
  std::vector<std::pair<std::string, std::shared_ptr<const CachedEncode>>> encodes;

  explicit PixelStorage(std::vector<Pixel>&& px);
  ~PixelStorage();
  PixelStorage(const PixelStorage&) = delete;
  PixelStorage& operator=(const PixelStorage&) = delete;

  // Diff-updates the live/peak accounting after the vector was resized.
  void Retrack();

 private:
  int64_t tracked_ = 0;
};

}  // namespace internal

// Immutable, ref-counted view of a byte range. Copying the handle is a
// ref-count bump; Slice() shares the backing store.
class ByteBuffer {
 public:
  ByteBuffer() = default;

  // Allocates a backing store and copies `data` into it (counted).
  static ByteBuffer Copy(std::span<const uint8_t> data);
  // Takes ownership of `bytes` without copying.
  static ByteBuffer Adopt(std::vector<uint8_t>&& bytes);

  const uint8_t* data() const {
    return storage_ ? storage_->bytes.data() + offset_ : nullptr;
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + size_; }
  uint8_t operator[](size_t i) const { return data()[i]; }
  std::span<const uint8_t> view() const { return {data(), size_}; }
  operator std::span<const uint8_t>() const { return view(); }

  // Sub-view sharing the backing store (deep copy in legacy mode).
  ByteBuffer Slice(size_t offset, size_t length) const;
  // Another handle to the same bytes (deep copy in legacy mode). This is
  // what makes "encode once, send to N viewers" free.
  ByteBuffer Share() const;

 private:
  friend class FrameArena;
  friend class WireWriter;
  ByteBuffer(std::shared_ptr<const internal::ByteStorage> storage, size_t offset,
             size_t size)
      : storage_(std::move(storage)), offset_(offset), size_(size) {}

  std::shared_ptr<const internal::ByteStorage> storage_;
  size_t offset_ = 0;
  size_t size_ = 0;
};

struct CachedEncode {
  ByteBuffer frame;   // complete wire frame
  double cpu_cost = 0;  // reference-speed cost of the original encode
};

// Ref-counted copy-on-write pixel payload.
class PixelBuffer {
 public:
  PixelBuffer() = default;
  explicit PixelBuffer(std::vector<Pixel>&& pixels);
  static PixelBuffer Copy(std::span<const Pixel> pixels);

  size_t size() const { return storage_ ? storage_->pixels.size() : 0; }
  bool empty() const { return size() == 0; }
  const Pixel* data() const { return storage_ ? storage_->pixels.data() : nullptr; }
  std::span<const Pixel> view() const { return {data(), size()}; }

  // Cheap ref-count share (deep copy in legacy mode). The offscreen
  // queue-copy path clones through this.
  PixelBuffer Share() const;

  // Mutable access: detaches from co-owners first (copy-on-write) and
  // always assigns a fresh content id, so cached encodings keyed on the old
  // identity can never be served for the new content.
  std::vector<Pixel>& Mutate();

  // Appends pixels (CoW: detaches first if the payload is shared).
  void Append(std::span<const Pixel> extra);

  uint64_t content_id() const { return storage_ ? storage_->content_id : 0; }
  bool shared() const { return storage_ && storage_.use_count() > 1; }

  // Payload-attached encode cache: commands sharing this payload encode a
  // given key exactly once; every hit returns identical bytes AND the
  // identical simulated CPU cost, so reuse never perturbs timing.
  std::shared_ptr<const CachedEncode> LookupEncode(const std::string& key) const;
  void StoreEncode(const std::string& key, ByteBuffer frame, double cpu_cost) const;

 private:
  std::shared_ptr<internal::PixelStorage> storage_;
};

// Recycling pool of frame slabs. A slab is reusable once every ByteBuffer
// referencing it has been released (the pool holds the last reference).
class FrameArena {
 public:
  // Returns an empty writable slab — recycled if one is free.
  std::shared_ptr<internal::ByteStorage> Acquire();
  size_t slab_count() const { return slabs_.size(); }

 private:
  std::vector<std::shared_ptr<internal::ByteStorage>> slabs_;
};

// Iovec-style FIFO of buffer views with byte-granular consumption. Popping
// slices the head segment without copying whenever it satisfies the
// request; only a pop spanning segments gathers.
class SegmentQueue {
 public:
  // Enqueues a view (zero-copy; deep copy in legacy mode).
  void Append(ByteBuffer data);
  // Enqueues a copy of `data` (for callers that only have a transient span).
  void AppendCopy(std::span<const uint8_t> data);
  // Puts `data` back at the front (un-consumed remainder of a failed send).
  void Prepend(ByteBuffer data);

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  // Un-consumed remainder of the head segment (0 when empty). A PopUpTo of
  // at most this many bytes is guaranteed to slice, never gather — what a
  // copy-free forwarder (Relay) caps its pops at.
  size_t head_segment_size() const {
    return segments_.empty()
               ? 0
               : segments_.front().data.size() - segments_.front().offset;
  }
  void Clear();

  // Dequeues exactly min(n, size()) bytes.
  ByteBuffer PopUpTo(size_t n);

 private:
  struct Segment {
    ByteBuffer data;
    size_t offset = 0;  // bytes already consumed
  };
  std::deque<Segment> segments_;
  size_t total_ = 0;
};

// Bounded shared cache of encoded frames, keyed by command identity. A
// shared-session host hands one to every viewer's server so a frame
// encoded for one viewer is reused — bytes and all — for the others.
//
// Because the simulated encode takes virtual time, the cache also tracks
// encodes in flight: a server that misses but finds another server already
// encoding the same key waits for that encode's completion instead of
// starting a duplicate (the single-encoder behaviour of a real shared
// server).
class ByteBufferCache {
 public:
  explicit ByteBufferCache(size_t capacity = 128) : capacity_(capacity) {}

  // Returns the cached frame, or an empty buffer on miss.
  ByteBuffer Lookup(const std::string& key);
  // Stores the finished frame and retires any in-flight marker for the key.
  void Store(const std::string& key, ByteBuffer frame);
  size_t size() const { return entries_.size(); }

  // In-flight registry (times are sim-time ticks; the cache is agnostic).
  void NoteEncodeStarted(const std::string& key, int64_t ready_time);
  // Completion time of an in-flight encode for `key`, or -1 if none.
  int64_t PendingEncodeReady(const std::string& key) const;

 private:
  size_t capacity_;
  // Insertion-ordered FIFO eviction; entries are small (handles).
  std::deque<std::pair<std::string, ByteBuffer>> entries_;
  std::deque<std::pair<std::string, int64_t>> in_flight_;
};

}  // namespace thinc

#endif  // THINC_SRC_UTIL_BUFFER_H_
