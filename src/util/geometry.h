// Basic integer geometry used throughout the display stack.
//
// Coordinates follow the X window system convention: the origin is the
// top-left corner, x grows right and y grows down. Rectangles are half-open
// on the right/bottom edge, i.e. a Rect covers pixels with
// x in [x, x + width) and y in [y, y + height).
#ifndef THINC_SRC_UTIL_GEOMETRY_H_
#define THINC_SRC_UTIL_GEOMETRY_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace thinc {

struct Point {
  int32_t x = 0;
  int32_t y = 0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr Point operator+(Point a, Point b) { return Point{a.x + b.x, a.y + b.y}; }
constexpr Point operator-(Point a, Point b) { return Point{a.x - b.x, a.y - b.y}; }

// Axis-aligned rectangle, half-open on right and bottom edges.
struct Rect {
  int32_t x = 0;
  int32_t y = 0;
  int32_t width = 0;
  int32_t height = 0;

  static constexpr Rect FromEdges(int32_t x1, int32_t y1, int32_t x2, int32_t y2) {
    return Rect{x1, y1, x2 - x1, y2 - y1};
  }

  constexpr int32_t right() const { return x + width; }
  constexpr int32_t bottom() const { return y + height; }
  constexpr bool empty() const { return width <= 0 || height <= 0; }
  constexpr int64_t area() const {
    return empty() ? 0 : static_cast<int64_t>(width) * height;
  }
  constexpr Point origin() const { return Point{x, y}; }

  constexpr bool Contains(Point p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }
  constexpr bool Contains(const Rect& r) const {
    return !r.empty() && r.x >= x && r.y >= y && r.right() <= right() &&
           r.bottom() <= bottom();
  }
  constexpr bool Intersects(const Rect& r) const {
    return !empty() && !r.empty() && x < r.right() && r.x < right() && y < r.bottom() &&
           r.y < bottom();
  }

  // Returns the intersection; empty (possibly degenerate) if disjoint.
  constexpr Rect Intersect(const Rect& r) const {
    int32_t x1 = std::max(x, r.x);
    int32_t y1 = std::max(y, r.y);
    int32_t x2 = std::min(right(), r.right());
    int32_t y2 = std::min(bottom(), r.bottom());
    if (x2 <= x1 || y2 <= y1) {
      return Rect{};
    }
    return FromEdges(x1, y1, x2, y2);
  }

  // Smallest rectangle containing both; if one is empty, returns the other.
  constexpr Rect Union(const Rect& r) const {
    if (empty()) {
      return r;
    }
    if (r.empty()) {
      return *this;
    }
    return FromEdges(std::min(x, r.x), std::min(y, r.y), std::max(right(), r.right()),
                     std::max(bottom(), r.bottom()));
  }

  constexpr Rect Translated(int32_t dx, int32_t dy) const {
    return Rect{x + dx, y + dy, width, height};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  std::string ToString() const {
    return "[" + std::to_string(x) + "," + std::to_string(y) + " " +
           std::to_string(width) + "x" + std::to_string(height) + "]";
  }
};

}  // namespace thinc

#endif  // THINC_SRC_UTIL_GEOMETRY_H_
