#include "src/util/region.h"

#include <algorithm>
#include <cassert>

namespace thinc {
namespace {

// An x interval [x1, x2).
struct Span {
  int32_t x1;
  int32_t x2;
  friend bool operator==(const Span&, const Span&) = default;
};

// Collects the x spans of `rects` that are active in the y slab [y1, y2).
// Rects are banded and sorted, so the result is sorted and disjoint.
std::vector<Span> SpansInSlab(const std::vector<Rect>& rects, int32_t y1, int32_t y2) {
  std::vector<Span> spans;
  for (const Rect& r : rects) {
    if (r.y <= y1 && r.bottom() >= y2) {
      spans.push_back(Span{r.x, r.right()});
    }
  }
  return spans;
}

std::vector<Span> CombineSpans(const std::vector<Span>& a, const std::vector<Span>& b,
                               bool in_a_only, bool in_b_only, bool in_both) {
  // Sweep over x breakpoints, tracking membership in a and b.
  std::vector<Span> out;
  size_t ia = 0;
  size_t ib = 0;
  int32_t x = INT32_MIN;
  auto emit = [&out](int32_t x1, int32_t x2) {
    if (x1 >= x2) {
      return;
    }
    if (!out.empty() && out.back().x2 == x1) {
      out.back().x2 = x2;  // coalesce touching spans
    } else {
      out.push_back(Span{x1, x2});
    }
  };
  while (ia < a.size() || ib < b.size()) {
    // Next breakpoint after x.
    int32_t next = INT32_MAX;
    bool in_a = false;
    bool in_b = false;
    if (ia < a.size()) {
      if (x < a[ia].x1) {
        next = std::min(next, a[ia].x1);
      } else {
        in_a = true;
        next = std::min(next, a[ia].x2);
      }
    }
    if (ib < b.size()) {
      if (x < b[ib].x1) {
        next = std::min(next, b[ib].x1);
      } else {
        in_b = true;
        next = std::min(next, b[ib].x2);
      }
    }
    if (x == INT32_MIN) {
      x = std::min(ia < a.size() ? a[ia].x1 : INT32_MAX,
                   ib < b.size() ? b[ib].x1 : INT32_MAX);
      continue;
    }
    bool keep = (in_a && in_b) ? in_both : (in_a ? in_a_only : (in_b ? in_b_only : false));
    if (keep) {
      emit(x, next);
    }
    if (ia < a.size() && a[ia].x2 == next) {
      ++ia;
    }
    if (ib < b.size() && b[ib].x2 == next) {
      ++ib;
    }
    x = next;
  }
  return out;
}

}  // namespace

Region Region::FromRects(std::span<const Rect> rects) {
  Region out;
  for (const Rect& r : rects) {
    out = out.Union(Region(r));
  }
  return out;
}

int64_t Region::Area() const {
  int64_t total = 0;
  for (const Rect& r : rects_) {
    total += r.area();
  }
  return total;
}

Rect Region::Bounds() const {
  Rect b;
  for (const Rect& r : rects_) {
    b = b.Union(r);
  }
  return b;
}

bool Region::Contains(Point p) const {
  for (const Rect& r : rects_) {
    if (r.Contains(p)) {
      return true;
    }
  }
  return false;
}

bool Region::ContainsRect(const Rect& r) const {
  if (r.empty()) {
    return true;
  }
  return Region(r).Subtract(*this).empty();
}

bool Region::Intersects(const Rect& r) const {
  for (const Rect& mine : rects_) {
    if (mine.Intersects(r)) {
      return true;
    }
  }
  return false;
}

bool Region::Intersects(const Region& other) const {
  // Bands are sorted; a simple all-pairs check with early bounds pruning is
  // adequate for the small regions that flow through the display pipeline.
  for (const Rect& r : other.rects_) {
    if (Intersects(r)) {
      return true;
    }
  }
  return false;
}

Region Region::Combine(const Region& a, const Region& b, Op op) {
  const bool in_a_only = (op != Op::kIntersect);
  const bool in_b_only = (op == Op::kUnion);
  const bool in_both = (op != Op::kSubtract);

  // Gather y breakpoints from both regions.
  std::vector<int32_t> ys;
  ys.reserve((a.rects_.size() + b.rects_.size()) * 2);
  for (const Rect& r : a.rects_) {
    ys.push_back(r.y);
    ys.push_back(r.bottom());
  }
  for (const Rect& r : b.rects_) {
    ys.push_back(r.y);
    ys.push_back(r.bottom());
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  Region out;
  // Band under construction for vertical coalescing.
  int32_t band_y1 = 0;
  int32_t band_y2 = 0;
  std::vector<Span> band_spans;
  auto flush_band = [&out](int32_t y1, int32_t y2, const std::vector<Span>& spans) {
    for (const Span& s : spans) {
      out.rects_.push_back(Rect::FromEdges(s.x1, y1, s.x2, y2));
    }
  };

  for (size_t i = 0; i + 1 < ys.size(); ++i) {
    int32_t y1 = ys[i];
    int32_t y2 = ys[i + 1];
    std::vector<Span> spans = CombineSpans(SpansInSlab(a.rects_, y1, y2),
                                           SpansInSlab(b.rects_, y1, y2), in_a_only,
                                           in_b_only, in_both);
    if (spans.empty()) {
      continue;
    }
    if (!band_spans.empty() && band_y2 == y1 && band_spans == spans) {
      band_y2 = y2;  // vertical coalesce
    } else {
      flush_band(band_y1, band_y2, band_spans);
      band_y1 = y1;
      band_y2 = y2;
      band_spans = std::move(spans);
    }
  }
  flush_band(band_y1, band_y2, band_spans);
  return out;
}

Region Region::Union(const Region& other) const {
  return Combine(*this, other, Op::kUnion);
}

Region Region::Intersect(const Region& other) const {
  return Combine(*this, other, Op::kIntersect);
}

Region Region::Subtract(const Region& other) const {
  return Combine(*this, other, Op::kSubtract);
}

Region Region::Translated(int32_t dx, int32_t dy) const {
  Region out;
  out.rects_.reserve(rects_.size());
  for (const Rect& r : rects_) {
    out.rects_.push_back(r.Translated(dx, dy));
  }
  return out;
}

Region Region::Scaled(int32_t num, int32_t den) const {
  assert(num > 0 && den > 0);
  Region out;
  for (const Rect& r : rects_) {
    int64_t x1 = static_cast<int64_t>(r.x) * num / den;
    int64_t y1 = static_cast<int64_t>(r.y) * num / den;
    // Round the far edges outward so coverage is preserved.
    int64_t x2 = (static_cast<int64_t>(r.right()) * num + den - 1) / den;
    int64_t y2 = (static_cast<int64_t>(r.bottom()) * num + den - 1) / den;
    out = out.Union(Rect::FromEdges(static_cast<int32_t>(x1), static_cast<int32_t>(y1),
                                    static_cast<int32_t>(x2), static_cast<int32_t>(y2)));
  }
  return out;
}

bool Region::Validate() const {
  for (size_t i = 0; i < rects_.size(); ++i) {
    if (rects_[i].empty()) {
      return false;
    }
    for (size_t j = i + 1; j < rects_.size(); ++j) {
      if (rects_[i].Intersects(rects_[j])) {
        return false;
      }
    }
  }
  // Sorted by (y, x); same-band rects share y extents and do not touch.
  for (size_t i = 1; i < rects_.size(); ++i) {
    const Rect& p = rects_[i - 1];
    const Rect& c = rects_[i];
    if (c.y < p.y || (c.y == p.y && c.x <= p.x)) {
      return false;
    }
    if (c.y == p.y) {
      // Same band: identical vertical extent, and a strict horizontal gap
      // (touching rects must have been coalesced).
      if (c.bottom() != p.bottom() || c.x <= p.right()) {
        return false;
      }
    }
  }
  return true;
}

std::string Region::ToString() const {
  std::string s = "{";
  for (const Rect& r : rects_) {
    s += r.ToString();
  }
  s += "}";
  return s;
}

}  // namespace thinc
