#include "src/workload/video.h"

#include "src/util/logging.h"

namespace thinc {

VideoSource::VideoSource(EventLoop* loop, DrawingApi* api, CpuAccount* app_cpu,
                         VideoSourceOptions options)
    : loop_(loop), api_(api), app_cpu_(app_cpu), options_(options) {
  THINC_CHECK(options_.fps > 0);
  frame_interval_ = static_cast<SimTime>(kSecond / options_.fps);
  total_frames_ =
      static_cast<int32_t>(options_.duration / frame_interval_);
}

void VideoSource::Start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  stream_id_ = api_->VideoStreamCreate(options_.width, options_.height, options_.dst);
  EmitFrame();
}

void VideoSource::EmitFrame() {
  if (frames_emitted_ >= total_frames_) {
    api_->VideoStreamDestroy(stream_id_);
    if (on_complete_) {
      on_complete_();
    }
    return;
  }
  // The player decodes the frame on its host CPU.
  if (app_cpu_ != nullptr) {
    app_cpu_->Charge(options_.decode_cost_us);
  }
  Yv12Frame frame = FrameContent(frames_emitted_, options_.width, options_.height);
  api_->VideoFrame(stream_id_, frame);
  ++frames_emitted_;
  loop_->Schedule(frame_interval_, [this] { EmitFrame(); });
}

Yv12Frame VideoSource::FrameContent(int32_t index, int32_t width, int32_t height) {
  Yv12Frame f = Yv12Frame::Allocate(width, height);
  // Moving diagonal luma pattern with per-frame block noise; slowly rotating
  // chroma fields. Always-changing, poorly compressible — video-like.
  const int32_t shift = index * 3;
  for (int32_t y = 0; y < f.height; ++y) {
    for (int32_t x = 0; x < f.width; ++x) {
      uint32_t n = static_cast<uint32_t>((x / 8) * 73856093u ^ (y / 8) * 19349663u ^
                                         static_cast<uint32_t>(index) * 83492791u);
      f.y[static_cast<size_t>(y) * f.width + x] =
          static_cast<uint8_t>(((x + y + shift) & 0xFF) ^ (n & 0x3F));
    }
  }
  const int32_t cw = f.width / 2;
  const int32_t ch = f.height / 2;
  for (int32_t y = 0; y < ch; ++y) {
    for (int32_t x = 0; x < cw; ++x) {
      f.u[static_cast<size_t>(y) * cw + x] =
          static_cast<uint8_t>(128 + ((x + shift) % 64) - 32);
      f.v[static_cast<size_t>(y) * cw + x] =
          static_cast<uint8_t>(128 + ((y + shift / 2) % 64) - 32);
    }
  }
  return f;
}

}  // namespace thinc
