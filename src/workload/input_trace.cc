#include "src/workload/input_trace.h"

#include "src/util/logging.h"
#include "src/util/prng.h"

namespace thinc {
namespace {

// Clamps a point into the device screen (generators already aim in bounds;
// the clamp guards degenerate tiny screens).
Point InBounds(int64_t x, int64_t y, const InputTraceOptions& o) {
  const int32_t max_x = o.screen_width > 0 ? o.screen_width - 1 : 0;
  const int32_t max_y = o.screen_height > 0 ? o.screen_height - 1 : 0;
  Point p;
  p.x = static_cast<int32_t>(x < 0 ? 0 : (x > max_x ? max_x : x));
  p.y = static_cast<int32_t>(y < 0 ? 0 : (y > max_y ? max_y : y));
  return p;
}

// Desktop keyboard: typing bursts of 5..15 keystrokes at 120..280 ms
// inter-key gaps, separated by 1..3 s think pauses; each burst advances the
// caret along a text line, and some pauses end with a navigation click.
void GenerateDesktop(const InputTraceOptions& o, Prng* rng,
                     std::vector<InputEvent>* out) {
  SimTime t = rng->NextInRange(200, 800) * kMillisecond;
  int64_t caret_x = o.screen_width / 8;
  int64_t caret_y = o.screen_height / 4;
  const int64_t char_w = 8;
  const int64_t line_h = 16;
  while (t < o.duration) {
    const int burst = static_cast<int>(rng->NextInRange(5, 15));
    for (int k = 0; k < burst && t < o.duration; ++k) {
      out->push_back({t, InputEventKind::kKeystroke,
                      InBounds(caret_x, caret_y, o)});
      caret_x += char_w;
      if (caret_x > o.screen_width * 7 / 8) {
        caret_x = o.screen_width / 8;
        caret_y += line_h;
        if (caret_y > o.screen_height * 3 / 4) {
          caret_y = o.screen_height / 4;
        }
      }
      t += rng->NextInRange(120, 280) * kMillisecond;
    }
    // Think pause; one in four ends with a click somewhere on the page.
    t += rng->NextInRange(1000, 3000) * kMillisecond;
    if (t < o.duration && rng->NextBool(0.25)) {
      out->push_back({t, InputEventKind::kTap,
                      InBounds(rng->NextBelow(o.screen_width),
                               rng->NextBelow(o.screen_height), o)});
      t += rng->NextInRange(300, 900) * kMillisecond;
    }
  }
}

// Phone touch: flick-scroll bursts of 4..8 steps at 40..90 ms gaps down the
// page, long 2..5 s reading gaps, occasional taps (link follows).
void GeneratePhone(const InputTraceOptions& o, Prng* rng,
                   std::vector<InputEvent>* out) {
  SimTime t = rng->NextInRange(300, 1200) * kMillisecond;
  while (t < o.duration) {
    if (rng->NextBool(0.7)) {
      const int steps = static_cast<int>(rng->NextInRange(4, 8));
      const int64_t x = o.screen_width / 2 +
                        rng->NextInRange(-o.screen_width / 8, o.screen_width / 8);
      for (int k = 0; k < steps && t < o.duration; ++k) {
        const int64_t y = o.screen_height / 2 +
                          rng->NextInRange(-o.screen_height / 4,
                                           o.screen_height / 4);
        out->push_back({t, InputEventKind::kScroll, InBounds(x, y, o)});
        t += rng->NextInRange(40, 90) * kMillisecond;
      }
    } else {
      out->push_back({t, InputEventKind::kTap,
                      InBounds(rng->NextBelow(o.screen_width),
                               rng->NextBelow(o.screen_height), o)});
      t += rng->NextInRange(200, 600) * kMillisecond;
    }
    // Reading gap.
    t += rng->NextInRange(2000, 5000) * kMillisecond;
  }
}

// Kiosk terminal: sparse touches every 5..15 s (a display-mostly device —
// signage, a lab status screen — whose rare input is navigation).
void GenerateKiosk(const InputTraceOptions& o, Prng* rng,
                   std::vector<InputEvent>* out) {
  SimTime t = rng->NextInRange(2000, 8000) * kMillisecond;
  while (t < o.duration) {
    out->push_back({t, InputEventKind::kTap,
                    InBounds(rng->NextBelow(o.screen_width),
                             rng->NextBelow(o.screen_height), o)});
    t += rng->NextInRange(5000, 15000) * kMillisecond;
  }
}

}  // namespace

const char* InputEventKindName(InputEventKind kind) {
  switch (kind) {
    case InputEventKind::kKeystroke:
      return "keystroke";
    case InputEventKind::kScroll:
      return "scroll";
    case InputEventKind::kTap:
      return "tap";
  }
  return "?";
}

std::vector<InputEvent> GenerateInputTrace(const InputTraceOptions& options) {
  THINC_CHECK(options.duration >= 0);
  THINC_CHECK(options.screen_width > 0 && options.screen_height > 0);
  std::vector<InputEvent> out;
  Prng rng(options.seed);
  switch (options.cadence) {
    case InputCadence::kDesktopKeyboard:
      GenerateDesktop(options, &rng, &out);
      break;
    case InputCadence::kPhoneTouch:
      GeneratePhone(options, &rng, &out);
      break;
    case InputCadence::kTerminalKiosk:
      GenerateKiosk(options, &rng, &out);
      break;
  }
  // The generators emit in time order by construction; keep the invariant
  // checkable where it is produced.
  for (size_t i = 1; i < out.size(); ++i) {
    THINC_CHECK_MSG(out[i].time > out[i - 1].time,
                    "input trace times must be strictly increasing");
  }
  return out;
}

void ReplayInputTrace(EventLoop* loop, const std::vector<InputEvent>& trace,
                      std::function<void(const InputEvent&)> deliver) {
  const SimTime base = loop->now();
  for (const InputEvent& e : trace) {
    loop->ScheduleAt(base + e.time,
                     [deliver, e] { deliver(e); });
  }
}

InputTraceStats SummarizeInputTrace(const std::vector<InputEvent>& trace) {
  InputTraceStats stats;
  stats.events = trace.size();
  for (const InputEvent& e : trace) {
    switch (e.kind) {
      case InputEventKind::kKeystroke:
        ++stats.keystrokes;
        break;
      case InputEventKind::kScroll:
        ++stats.scrolls;
        break;
      case InputEventKind::kTap:
        ++stats.taps;
        break;
    }
  }
  if (trace.size() >= 2) {
    stats.mean_gap = (trace.back().time - trace.front().time) /
                     static_cast<SimTime>(trace.size() - 1);
  }
  return stats;
}

}  // namespace thinc
