#include "src/workload/web.h"

#include <algorithm>

#include "src/raster/font.h"
#include "src/util/logging.h"

namespace thinc {
namespace {

const char* const kWords[] = {
    "THE",  "QUICK", "BROWN",  "FOX",   "JUMPS",  "OVER",  "LAZY",  "DOG",
    "WEB",  "PAGE",  "SERVER", "CLIENT", "THIN",  "DISPLAY", "REMOTE", "DRIVER",
    "AND",  "OF",    "TO",     "IN",    "IS",     "THAT",  "FOR",   "WITH",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9E3779B97F4A7C15ULL + b;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  return x;
}

}  // namespace

WebWorkload::WebWorkload(int32_t screen_width, int32_t screen_height, uint64_t seed)
    : width_(screen_width), height_(screen_height) {
  pages_.reserve(kPageCount);
  for (int32_t i = 0; i < kPageCount; ++i) {
    Prng rng(Mix(seed, static_cast<uint64_t>(i) + 1));
    WebPageSpec p;
    p.index = i;
    p.background = MakePixel(240 + static_cast<uint8_t>(rng.NextBelow(16)),
                             240 + static_cast<uint8_t>(rng.NextBelow(16)),
                             240 + static_cast<uint8_t>(rng.NextBelow(16)));
    // Every ~7th page is a single large image (photo page).
    p.big_image_page = (i % 7 == 3);
    if (p.big_image_page) {
      int32_t w = width_ * 3 / 4;
      int32_t h = height_ * 2 / 3;
      p.images.push_back(WebImageSpec{Rect{width_ / 8, 80, w, h}});
      // JPEG-class image content: ~0.2 bytes per pixel plus markup.
      p.content_bytes = static_cast<int64_t>(w) * h / 5 + 15'000;
      p.layout_cost_us = 60'000;
      pages_.push_back(std::move(p));
      continue;
    }
    p.tiled_header = rng.NextBool(0.7);
    p.aa_banner = rng.NextBool(0.35);
    // Text blocks: 2-5 paragraphs.
    int32_t blocks = 2 + static_cast<int32_t>(rng.NextBelow(4));
    int32_t y = 100;
    for (int32_t b = 0; b < blocks; ++b) {
      WebTextBlock block;
      block.origin = Point{40 + static_cast<int32_t>(rng.NextBelow(60)), y};
      block.lines = 4 + static_cast<int32_t>(rng.NextBelow(10));
      block.chars_per_line = 40 + static_cast<int32_t>(rng.NextBelow(80));
      y += block.lines * kGlyphLineHeight + 24;
      p.text.push_back(block);
    }
    // Inline images: 1-4, small to medium (logos, photos, ads).
    int32_t images = 1 + static_cast<int32_t>(rng.NextBelow(4));
    for (int32_t k = 0; k < images; ++k) {
      int32_t w = 80 + static_cast<int32_t>(rng.NextBelow(240));
      int32_t h = 60 + static_cast<int32_t>(rng.NextBelow(160));
      int32_t x = 40 + static_cast<int32_t>(rng.NextBelow(
                           static_cast<uint64_t>(std::max(1, width_ - w - 80))));
      p.images.push_back(WebImageSpec{Rect{x, y, w, h}});
      y += h + 16;
    }
    // The i-Bench-style suite is load-and-click: the mechanical mouse
    // clicks the next link once the page is displayed, with no scrolling
    // inside the measured window. (RenderPage still supports scroll_steps
    // for tests and examples.)
    p.scroll_steps = 0;
    // Content volume: HTML + jpeg-ish images (~1 byte/pixel).
    int64_t image_bytes = 0;
    for (const WebImageSpec& img : p.images) {
      image_bytes += img.rect.area();
    }
    int64_t text_bytes = 0;
    for (const WebTextBlock& block : p.text) {
      text_bytes += static_cast<int64_t>(block.lines) * block.chars_per_line;
    }
    p.content_bytes = 15'000 + text_bytes + image_bytes / 5;
    // Browser layout work scales with page complexity.
    p.layout_cost_us =
        80'000 + 4.0 * static_cast<double>(text_bytes) +
        0.02 * static_cast<double>(image_bytes) + 15'000.0 * p.images.size();
    pages_.push_back(std::move(p));
  }
}

Point WebWorkload::LinkPosition(int32_t index) const {
  Prng rng(Mix(0xC11C4, static_cast<uint64_t>(index)));
  return Point{60 + static_cast<int32_t>(rng.NextBelow(
                        static_cast<uint64_t>(width_ - 120))),
               height_ - 40};
}

std::vector<Pixel> WebWorkload::ImageContent(int32_t page, int32_t image,
                                             int32_t width, int32_t height) {
  std::vector<Pixel> pixels(static_cast<size_t>(width) * height);
  uint64_t base = Mix(static_cast<uint64_t>(page) + 17,
                      static_cast<uint64_t>(image) + 3);
  for (int32_t y = 0; y < height; ++y) {
    for (int32_t x = 0; x < width; ++x) {
      // Smooth gradient with block-correlated noise: compresses a few-to-one
      // like real graphics, not like synthetic flat color.
      uint64_t n = Mix(base, (static_cast<uint64_t>(y / 4) << 20) |
                                 static_cast<uint64_t>(x / 4));
      // Noise occupies bits 1..5 so mild quantization (RGB565) cannot
      // simply erase it — real photographic detail does not live purely in
      // the lowest bits either.
      uint8_t r = static_cast<uint8_t>((x * 255 / std::max(1, width - 1)) ^
                                       (n & 0x7E));
      uint8_t g = static_cast<uint8_t>((y * 255 / std::max(1, height - 1)) ^
                                       ((n >> 5) & 0x7E));
      uint8_t b = static_cast<uint8_t>(((x + y) & 0xFF) ^ ((n >> 10) & 0x7E));
      pixels[static_cast<size_t>(y) * width + x] = MakePixel(r, g, b);
    }
  }
  return pixels;
}

std::string WebWorkload::TextLine(int32_t page, int32_t block, int32_t line,
                                  int32_t chars) {
  std::string out;
  out.reserve(static_cast<size_t>(chars));
  uint64_t state = Mix(Mix(static_cast<uint64_t>(page), static_cast<uint64_t>(block)),
                       static_cast<uint64_t>(line));
  while (static_cast<int32_t>(out.size()) < chars) {
    state = Mix(state, out.size());
    const char* word = kWords[state % kWordCount];
    out += word;
    out += ' ';
  }
  out.resize(static_cast<size_t>(chars));
  return out;
}

void WebWorkload::RenderPage(DrawingApi* api, int32_t index,
                             CpuAccount* app_cpu) const {
  const WebPageSpec& spec = pages_[static_cast<size_t>(index)];
  // Browser layout/HTML processing before any drawing.
  if (app_cpu != nullptr) {
    app_cpu->Charge(spec.layout_cost_us);
  }

  const int32_t page_height = height_ + spec.scroll_steps * 120;
  DrawableId page = api->CreatePixmap(width_, page_height);

  // Background and header.
  api->FillRect(page, Rect{0, 0, width_, page_height}, spec.background);
  if (spec.tiled_header) {
    Surface tile(16, 16);
    for (int32_t y = 0; y < 16; ++y) {
      for (int32_t x = 0; x < 16; ++x) {
        uint64_t n = Mix(static_cast<uint64_t>(index),
                         (static_cast<uint64_t>(y) << 8) | static_cast<uint64_t>(x));
        tile.Put(x, y, MakePixel(60 + (n & 0x3F), 80 + ((n >> 6) & 0x3F), 160));
      }
    }
    api->FillTiled(page, Rect{0, 0, width_, 64}, tile, Point{0, 0});
  }

  // Images: rasterized strip-by-strip into their own pixmap, then copied
  // into the page pixmap (the offscreen hierarchy).
  for (size_t k = 0; k < spec.images.size(); ++k) {
    const Rect& r = spec.images[k].rect;
    DrawableId img = api->CreatePixmap(r.width, r.height);
    std::vector<Pixel> content =
        ImageContent(index, static_cast<int32_t>(k), r.width, r.height);
    constexpr int32_t kStrip = 4;  // scanline batches, like image decoders
    for (int32_t y = 0; y < r.height; y += kStrip) {
      int32_t rows = std::min(kStrip, r.height - y);
      api->PutImage(img, Rect{0, y, r.width, rows},
                    std::span<const Pixel>(
                        content.data() + static_cast<size_t>(y) * r.width,
                        static_cast<size_t>(rows) * r.width));
    }
    api->CopyArea(img, page, Rect{0, 0, r.width, r.height}, r.origin());
    api->FreePixmap(img);
  }

  // Text paragraphs.
  for (size_t b = 0; b < spec.text.size(); ++b) {
    const WebTextBlock& block = spec.text[b];
    for (int32_t line = 0; line < block.lines; ++line) {
      std::string text = TextLine(index, static_cast<int32_t>(b), line,
                                  block.chars_per_line);
      api->DrawText(page,
                    Point{block.origin.x,
                          block.origin.y + line * kGlyphLineHeight},
                    text, MakePixel(20, 20, 40));
    }
  }

  // Anti-aliased banner: translucent alpha content composited over the page.
  if (spec.aa_banner) {
    Rect banner{width_ / 4, 8, width_ / 2, 40};
    std::vector<Pixel> argb(static_cast<size_t>(banner.area()));
    for (int32_t y = 0; y < banner.height; ++y) {
      for (int32_t x = 0; x < banner.width; ++x) {
        uint8_t a = static_cast<uint8_t>(40 + (x * 180) / banner.width);
        argb[static_cast<size_t>(y) * banner.width + x] =
            MakePixel(200, 40, 40, a);
      }
    }
    api->CompositeOver(page, banner, argb);
  }

  // Present: copy the visible part of the page pixmap onscreen in slices
  // (the expose/paint pattern).
  const int32_t kSlices = 3;
  for (int32_t s = 0; s < kSlices; ++s) {
    int32_t y0 = s * height_ / kSlices;
    int32_t y1 = (s + 1) * height_ / kSlices;
    api->CopyArea(page, kScreenDrawable, Rect{0, y0, width_, y1 - y0},
                  Point{0, y0});
  }

  // Scroll through the remainder of the page.
  for (int32_t s = 0; s < spec.scroll_steps; ++s) {
    const int32_t dy = 120;
    api->ScrollUp(kScreenDrawable, Rect{0, 0, width_, height_}, dy,
                  spec.background);
    // Newly exposed strip comes from the page pixmap.
    api->CopyArea(page, kScreenDrawable,
                  Rect{0, height_ + s * dy, width_, dy},
                  Point{0, height_ - dy});
  }

  api->FreePixmap(page);
}

}  // namespace thinc
