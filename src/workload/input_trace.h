// Replayable interactive input traces: deterministic per-device-class event
// schedules (typing, scrolling, tapping) that drive a session the way its
// human does.
//
// The paper measures interactive performance under real user input (web
// clicks, A/V control); a heterogeneous fleet adds the observation that
// DIFFERENT devices produce differently-shaped input. A desktop user types
// in bursts with think pauses; a phone user taps and flick-scrolls with long
// reading gaps; a kiosk terminal sees sparse, widely-spaced touches. Each
// cadence class generates a distinct arrival process — all from one
// splitmix64 stream, so the schedule for (cadence, seed, duration) is a pure
// function: replaying it against any system yields the identical virtual
// event times, which is what makes per-device latency comparisons and the
// byte-identical-wire determinism tests possible.
#ifndef THINC_SRC_WORKLOAD_INPUT_TRACE_H_
#define THINC_SRC_WORKLOAD_INPUT_TRACE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/device/device.h"
#include "src/util/event_loop.h"
#include "src/util/geometry.h"

namespace thinc {

enum class InputEventKind {
  kKeystroke,  // one typed character (desktop bursts)
  kScroll,     // one flick/wheel step (phone flicks, desktop wheel)
  kTap,        // a click or touch (navigation)
};

const char* InputEventKindName(InputEventKind kind);

// One scheduled user action. Times are offsets from trace start, strictly
// increasing within a trace.
struct InputEvent {
  SimTime time = 0;
  InputEventKind kind = InputEventKind::kTap;
  // Where the event lands on the device's screen (caret position for
  // keystrokes, touch point for taps/flicks).
  Point location{0, 0};
};

struct InputTraceOptions {
  InputCadence cadence = InputCadence::kDesktopKeyboard;
  SimTime duration = 10 * kSecond;
  uint64_t seed = 1;
  // Device screen the locations are drawn on (events stay in bounds).
  int32_t screen_width = 1024;
  int32_t screen_height = 768;
};

// Generates the full event schedule for one trace. Deterministic: equal
// options (including seed) produce the identical vector; distinct seeds
// produce distinct schedules (splitmix64 stream per trace).
std::vector<InputEvent> GenerateInputTrace(const InputTraceOptions& options);

// Schedules every event of `trace` on `loop` at (loop->now() + event.time),
// invoking `deliver` for each. The caller's deliver callback typically
// forwards to ThincClient::SendInput / ThincSystem::ClientClick and echoes
// application output (typed characters, scrolled content) through the
// window server.
void ReplayInputTrace(EventLoop* loop, const std::vector<InputEvent>& trace,
                      std::function<void(const InputEvent&)> deliver);

// Summary statistics used by conformance tests and the device bench.
struct InputTraceStats {
  size_t events = 0;
  size_t keystrokes = 0;
  size_t scrolls = 0;
  size_t taps = 0;
  SimTime mean_gap = 0;  // mean inter-event gap (0 when < 2 events)
};

InputTraceStats SummarizeInputTrace(const std::vector<InputEvent>& trace);

}  // namespace thinc

#endif  // THINC_SRC_WORKLOAD_INPUT_TRACE_H_
