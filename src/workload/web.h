// Web browsing workload: a deterministic stand-in for the i-Bench Web Page
// Load suite the paper uses (54 pages with a mix of text and graphics,
// Section 8.2), rendered the way Mozilla renders — through a hierarchy of
// offscreen pixmaps that is composed and then copied onscreen. That
// rendering style is exactly what exercises THINC's offscreen awareness and
// what starves systems that ignore offscreen drawing.
//
// Page structure per index (deterministic from the seed):
//   * a solid page background and a tiled header strip,
//   * paragraphs of text (glyph stipple fills),
//   * inline images rasterized scanline-strip by scanline-strip into their
//     own small pixmaps, then copied into the page pixmap (the hierarchy),
//   * on some pages an anti-aliased (alpha-composited) banner,
//   * a handful of pages that are one single large image (the pages the
//     paper notes THINC handles with plain RAW + compression),
//   * a few scroll steps after display (COPY-accelerated scrolling).
#ifndef THINC_SRC_WORKLOAD_WEB_H_
#define THINC_SRC_WORKLOAD_WEB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/display/drawing_api.h"
#include "src/util/cpu.h"
#include "src/util/geometry.h"
#include "src/util/prng.h"

namespace thinc {

struct WebImageSpec {
  Rect rect;  // position within the page
};

struct WebTextBlock {
  Point origin;
  int32_t lines;
  int32_t chars_per_line;
};

struct WebPageSpec {
  int32_t index = 0;
  Pixel background = kWhite;
  bool tiled_header = false;
  bool aa_banner = false;        // anti-aliased (composited) banner
  bool big_image_page = false;   // page is one large image
  std::vector<WebTextBlock> text;
  std::vector<WebImageSpec> images;
  int32_t scroll_steps = 0;
  int64_t content_bytes = 0;     // HTML + compressed images (fetch volume)
  double layout_cost_us = 0;     // browser layout work at reference speed
};

class WebWorkload {
 public:
  static constexpr int32_t kPageCount = 54;

  explicit WebWorkload(int32_t screen_width, int32_t screen_height,
                       uint64_t seed = 1);

  const WebPageSpec& page(int32_t index) const { return pages_[index]; }
  int32_t page_count() const { return kPageCount; }

  // Where the "next page" link sits on the current page (the mechanical
  // mouse clicks here).
  Point LinkPosition(int32_t index) const;

  // Issues page `index`'s full rendering through `api`, charging browser
  // layout work to `app_cpu` first.
  void RenderPage(DrawingApi* api, int32_t index, CpuAccount* app_cpu) const;

  // Deterministic image content (gradient + hash noise, moderately
  // compressible like real web graphics).
  static std::vector<Pixel> ImageContent(int32_t page, int32_t image, int32_t width,
                                         int32_t height);

  // Deterministic text line for a page/block/line triple.
  static std::string TextLine(int32_t page, int32_t block, int32_t line,
                              int32_t chars);

 private:
  int32_t width_;
  int32_t height_;
  std::vector<WebPageSpec> pages_;
};

}  // namespace thinc

#endif  // THINC_SRC_WORKLOAD_WEB_H_
