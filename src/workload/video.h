// A/V playback workload: stands in for MPlayer playing the paper's 34.75 s
// 352x240 MPEG-1 clip at full-screen resolution (Section 8.2).
//
// The "player" decodes (CPU charge on the application host) and hands YV12
// frames to the display system through the XVideo-like DrawingApi at 24 fps
// real-time pacing. Systems with a video-capable driver (THINC) receive the
// YV12 stream; everyone else gets the window server's software-converted
// RGB fallback. Frame content is a moving pattern so pixel-level encoders
// see video-like (poorly compressible, always-changing) data.
#ifndef THINC_SRC_WORKLOAD_VIDEO_H_
#define THINC_SRC_WORKLOAD_VIDEO_H_

#include <cstdint>
#include <functional>

#include "src/display/drawing_api.h"
#include "src/raster/yuv.h"
#include "src/util/cpu.h"
#include "src/util/event_loop.h"

namespace thinc {

struct VideoSourceOptions {
  int32_t width = 352;
  int32_t height = 240;
  double fps = 24.0;
  SimTime duration = static_cast<SimTime>(34.75 * kSecond);
  Rect dst;  // on-screen placement (full screen in the benchmark)
  // MPEG-1 decode cost per frame at reference speed (the player's work).
  double decode_cost_us = 1500;
};

class VideoSource {
 public:
  VideoSource(EventLoop* loop, DrawingApi* api, CpuAccount* app_cpu,
              VideoSourceOptions options);

  // Begins playback; frames are emitted at real-time pacing.
  void Start(std::function<void()> on_complete = {});

  int32_t total_frames() const { return total_frames_; }
  int32_t frames_emitted() const { return frames_emitted_; }
  SimTime frame_interval() const { return frame_interval_; }

  // Deterministic YV12 content for frame `index`.
  static Yv12Frame FrameContent(int32_t index, int32_t width, int32_t height);

 private:
  void EmitFrame();

  EventLoop* loop_;
  DrawingApi* api_;
  CpuAccount* app_cpu_;
  VideoSourceOptions options_;
  int32_t stream_id_ = -1;
  int32_t total_frames_;
  int32_t frames_emitted_ = 0;
  SimTime frame_interval_;
  std::function<void()> on_complete_;
};

}  // namespace thinc

#endif  // THINC_SRC_WORKLOAD_VIDEO_H_
