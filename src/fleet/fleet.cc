#include "src/fleet/fleet.h"

#include <algorithm>
#include <string>

#include "src/telemetry/metrics.h"
#include "src/util/logging.h"

namespace thinc {
namespace {

// Prng(0) remaps to this constant; admission-time uniqueness must compare
// the seeds the streams actually run with.
constexpr uint64_t kPrngZeroRemap = 0x9E3779B97F4A7C15ULL;

uint64_t EffectiveSeed(uint64_t seed) { return seed ? seed : kPrngZeroRemap; }

}  // namespace

FleetHost::FleetHost(EventLoop* loop, FleetOptions options)
    : loop_(loop), options_(options),
      host_cpu_(loop, options.cpu_speed, options.cpu_cores),
      nic_(loop, options.link.bandwidth_bps) {
  THINC_CHECK(options_.cpu_cores >= 1);
  THINC_CHECK(options_.cpu_headroom > 0 && options_.cpu_headroom <= 1.0);
  THINC_CHECK(options_.nic_headroom > 0 && options_.nic_headroom <= 1.0);
}

uint64_t FleetHost::DeriveSessionSeed(uint64_t fleet_seed, uint64_t session_id) {
  // splitmix64 finalizer over (fleet_seed ^ (id + odd constant)): for a
  // fixed fleet seed this is a bijection of the id, so two sessions of one
  // fleet can never derive the same seed.
  uint64_t z = fleet_seed ^ (session_id + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool FleetHost::FitsHeadroom(const FleetSessionDemand& demand,
                             bool local) const {
  // CPU capacity: one second of host time executes 1e6 * speed * cores
  // reference microseconds of work (K cores run K charges concurrently).
  const double cpu_capacity = 1e6 * options_.cpu_speed * options_.cpu_cores *
                              options_.cpu_headroom;
  if (admitted_cpu_us_per_sec_ + demand.cpu_us_per_sec > cpu_capacity) {
    return false;
  }
  if (local) {
    // A loopback session never touches the NIC: its admission is gated by
    // CPU demand alone.
    return true;
  }
  const double nic_capacity =
      static_cast<double>(options_.link.bandwidth_bps) * options_.nic_headroom;
  const double nic_demand_bps =
      8.0 * static_cast<double>(admitted_nic_bytes_per_sec_ +
                                demand.nic_bytes_per_sec);
  return nic_demand_bps <= nic_capacity;
}

int FleetHost::PredictedCapacity(const FleetSessionDemand& demand) const {
  int cap = INT32_MAX;
  if (demand.cpu_us_per_sec > 0) {
    cap = std::min<int>(
        cap, static_cast<int>(1e6 * options_.cpu_speed * options_.cpu_cores *
                              options_.cpu_headroom / demand.cpu_us_per_sec));
  }
  if (demand.nic_bytes_per_sec > 0) {
    cap = std::min<int>(
        cap, static_cast<int>(static_cast<double>(options_.link.bandwidth_bps) *
                              options_.nic_headroom /
                              (8.0 * static_cast<double>(demand.nic_bytes_per_sec))));
  }
  return cap;
}

FleetHost::Admission FleetHost::AddSession(const FleetSessionDemand& demand,
                                           int64_t weight, bool local,
                                           const DeviceProfile& profile) {
  if (!FitsHeadroom(demand, local)) {
    if (options_.park_beyond_capacity) {
      ++parked_;
      static Counter* parked = MetricsRegistry::Get().GetCounter("fleet.parked");
      parked->Inc();
      return Admission::kParked;
    }
    ++rejected_;
    static Counter* rejected =
        MetricsRegistry::Get().GetCounter("fleet.rejected");
    rejected->Inc();
    return Admission::kRejected;
  }

  // Ids are assigned only on admission, so id == index into sessions_ and
  // the public accessors, the seed derivation, and the telemetry host name
  // all agree on one numbering even after parks/rejects.
  const size_t id = sessions_.size();
  auto s = std::make_unique<FleetSession>();
  s->id = id;
  s->seed = DeriveSessionSeed(options_.seed, id);
  s->local = local;
  s->demand = demand;
  s->profile = profile;
  s->prng = Prng(s->seed);
  // Two sessions sharing a PRNG stream would correlate "independent"
  // workloads; the derivation makes it impossible, and this check keeps it
  // that way if the derivation ever changes. Migrated-out slots are
  // tombstones; migrated-in seeds are checked by InsertSession.
  for (const auto& other : sessions_) {
    THINC_CHECK_MSG(other == nullptr ||
                        EffectiveSeed(other->seed) != EffectiveSeed(s->seed),
                    "fleet sessions must not share a PRNG stream");
  }

  CpuAccount* client_cpu = AttachTransport(s.get(), weight, local);
  ThincServerOptions server_options = options_.server_options;
  server_options.telemetry_host =
      options_.session_name_prefix + std::to_string(id);
  // The device profile chooses the overload ladder (phones degrade
  // resolution first) and names the client's trace host by class so mixed
  // populations stay distinguishable.
  server_options.ladder = profile.ladder;
  ThincClientOptions client_options = options_.client_options;
  client_options.client_pull = !server_options.server_push;
  client_options.encrypt = server_options.encrypt;
  client_options.telemetry_host = options_.session_name_prefix +
                                  std::to_string(id) + "-" + profile.name;
  s->server = std::make_unique<ThincServer>(loop_, s->transport.get(),
                                            &host_cpu_, server_options);
  s->ws = std::make_unique<WindowServer>(options_.screen_width,
                                         options_.screen_height,
                                         s->server.get(), &host_cpu_);
  s->server->AttachWindowServer(s->ws.get());
  s->client = std::make_unique<ThincClient>(loop_, s->transport.get(),
                                            client_cpu,
                                            options_.screen_width,
                                            options_.screen_height,
                                            client_options);
  BindInputHandler(s.get());
  // A device panel smaller than the hosted desktop negotiates its viewport
  // at session start; the server Fant-resamples every subsequent update.
  if (profile.screen_width > 0 && profile.screen_height > 0 &&
      (profile.screen_width != options_.screen_width ||
       profile.screen_height != options_.screen_height)) {
    s->client->RequestViewport(profile.screen_width, profile.screen_height);
  }

  admitted_cpu_us_per_sec_ += s->demand.cpu_us_per_sec;
  if (!local) {
    admitted_nic_bytes_per_sec_ += s->demand.nic_bytes_per_sec;
  }
  if (local) {
    ++local_count_;
  }
  ++live_sessions_;
  sessions_.push_back(std::move(s));
  {
    static Counter* admitted =
        MetricsRegistry::Get().GetCounter("fleet.admitted");
    static Gauge* count = MetricsRegistry::Get().GetGauge("fleet.sessions");
    static Gauge* locals = MetricsRegistry::Get().GetGauge("fleet.local_sessions");
    admitted->Inc();
    count->Set(static_cast<int64_t>(live_sessions_));
    locals->Set(static_cast<int64_t>(local_count_));
    // Device-matrix accounting: which classes this host serves and how many
    // of them needed viewport/loss-path treatment (per-class names are few,
    // so the registry lookup per admission is fine).
    const DeviceProfile& prof = sessions_.back()->profile;
    MetricsRegistry::Get()
        .GetCounter(std::string("device.admitted.") +
                    DeviceClassName(prof.klass))
        ->Inc();
    if (prof.screen_width > 0 && prof.screen_height > 0 &&
        (prof.screen_width != options_.screen_width ||
         prof.screen_height != options_.screen_height)) {
      static Counter* viewports =
          MetricsRegistry::Get().GetCounter("device.viewport_negotiations");
      viewports->Inc();
    }
    if (prof.lossy) {
      static Counter* lossy_paths =
          MetricsRegistry::Get().GetCounter("device.lossy_paths");
      lossy_paths->Inc();
    }
  }
  return Admission::kAdmitted;
}

CpuAccount* FleetHost::AttachTransport(FleetSession* s, int64_t weight,
                                       bool local) {
  s->wire = nullptr;
  if (local) {
    // Co-located session: frames reach the client as ref-counted loopback
    // handoffs (never through the NIC), and the client decodes on the host
    // CPU — it IS the host.
    s->transport =
        std::make_unique<LoopbackTransport>(loop_, &host_cpu_, options_.loopback);
    return &host_cpu_;
  }
  // The profile may override the per-session link (a phone's WAN path is
  // not the datacenter default) and swap the clean wire for a lossy one.
  const LinkParams link = s->profile.link.value_or(options_.link);
  std::unique_ptr<Connection> wire;
  if (s->profile.lossy) {
    // Each session's loss process gets its own deterministic substream,
    // derived from the session seed by the same bijective mix that keeps
    // workload streams disjoint (constant tags the loss domain).
    LossyOptions loss = s->profile.loss;
    loss.seed = DeriveSessionSeed(s->seed, 0x10551ULL);
    wire = std::make_unique<LossyTransport>(loop_, link, loss,
                                            options_.send_buffer_bytes);
  } else {
    wire = std::make_unique<Connection>(loop_, link,
                                        options_.send_buffer_bytes);
  }
  wire->AttachUplink(&nic_, weight);
  s->wire = wire.get();
  s->transport = std::move(wire);
  if (s->client_cpu == nullptr) {
    // Phones decode slower than the 1.0x reference terminal; the profile's
    // factor scales the account for the session's lifetime (it migrates
    // with the session).
    s->client_cpu =
        std::make_unique<CpuAccount>(loop_, s->profile.decode_speed);
  }
  return s->client_cpu.get();
}

void FleetHost::BindInputHandler(FleetSession* s) {
  FleetSession* raw = s;
  s->server->SetInputHandler([raw](Point p, int32_t button) {
    raw->ws->InjectInput(p);
    // Button 0 is a position-only event (cursor sync); only real clicks
    // reach the application callback.
    if (button > 0 && raw->input_fn) {
      raw->input_fn(p);
    }
  });
}

std::unique_ptr<FleetSession> FleetHost::ExtractSession(size_t id) {
  THINC_CHECK_MSG(has_session(id), "extracting an empty fleet slot");
  std::unique_ptr<FleetSession> s = std::move(sessions_[id]);
  // Park both endpoints: the reset notifies server and client through their
  // closed callbacks (on fresh loop events), after which the server holds
  // its virtual display state and the client its last applied frame.
  if (!s->transport->closed()) {
    s->transport->Reset();
  }
  admitted_cpu_us_per_sec_ -= s->demand.cpu_us_per_sec;
  if (!s->local) {
    admitted_nic_bytes_per_sec_ -= s->demand.nic_bytes_per_sec;
  }
  if (s->local) {
    --local_count_;
  }
  --live_sessions_;
  static Counter* out = MetricsRegistry::Get().GetCounter("fleet.migrated_out");
  out->Inc();
  return s;
}

std::optional<size_t> FleetHost::InsertSession(
    std::unique_ptr<FleetSession>* session, int64_t weight, bool local) {
  FleetSession* s = session->get();
  THINC_CHECK(s != nullptr);
  if (!FitsHeadroom(s->demand, local)) {
    return std::nullopt;
  }
  for (const auto& other : sessions_) {
    THINC_CHECK_MSG(other == nullptr ||
                        EffectiveSeed(other->seed) != EffectiveSeed(s->seed),
                    "fleet sessions must not share a PRNG stream");
  }
  const size_t id = sessions_.size();
  s->id = id;
  s->local = local;
  // The old host's transport is spent; keep it alive (loop events and
  // traces reference it) and build a fresh one on this host's resources.
  if (s->transport != nullptr) {
    s->retired.push_back(std::move(s->transport));
  }
  CpuAccount* client_cpu = AttachTransport(s, weight, local);
  // Move the whole server-side stack onto this host's CPU before any new
  // work is charged, then resynchronize through the reconnect protocol with
  // the differential resync armed: the client's renegotiation pulls only
  // the region drawn since it provably matched the screen.
  s->server->RebindCpu(&host_cpu_);
  s->ws->set_cpu(&host_cpu_);
  s->server->Attach(s->transport.get());
  s->server->ArmDifferentialResync();
  s->client->Attach(s->transport.get(), client_cpu);
  admitted_cpu_us_per_sec_ += s->demand.cpu_us_per_sec;
  if (!local) {
    admitted_nic_bytes_per_sec_ += s->demand.nic_bytes_per_sec;
  }
  if (local) {
    ++local_count_;
  }
  ++live_sessions_;
  sessions_.push_back(std::move(*session));
  static Counter* in = MetricsRegistry::Get().GetCounter("fleet.migrated_in");
  static Gauge* count = MetricsRegistry::Get().GetGauge("fleet.sessions");
  in->Inc();
  count->Set(static_cast<int64_t>(live_sessions_));
  return id;
}

void FleetHost::ClientClick(size_t id, Point location) {
  sessions_[id]->client->SendInput(location, /*button=*/1);
}

void FleetHost::SetInputCallback(size_t id, InputFn fn) {
  sessions_[id]->input_fn = std::move(fn);
}

size_t FleetHost::FramebufferBytes() const {
  return static_cast<size_t>(options_.screen_width) * options_.screen_height *
         sizeof(Pixel);
}

void FleetHost::StartController(SimTime until) {
  if (controller_running_) {
    return;
  }
  controller_running_ = true;
  loop_->Schedule(options_.control_interval,
                  [this, until] { ControllerTick(until); });
}

FleetHost::OverloadSignals FleetHost::ComputeOverloadSignals() const {
  const SimTime now = loop_->now();
  OverloadSignals sig;
  // Max-per-core lag: on a K-core host the overload signal is the MOST
  // loaded core, not the least — one core pinned a second behind means some
  // session's pipeline runs a second late even if other cores idle.
  sig.cpu_lag_us = host_cpu_.max_core_lag(now);
  // NIC lag is drain time for everything queued at the uplink. The WFQ
  // scheduler itself holds at most the in-flight segment; the backlog lives
  // in the per-session socket buffers feeding it.
  int64_t socket_bytes = 0;
  int64_t sched_bytes = 0;
  for (const auto& s : sessions_) {
    if (s == nullptr || s->local) {
      // Migrated-out tombstone, or loopback backlog that never wants the
      // wire (its pressure shows up as CPU lag, not NIC lag).
      continue;
    }
    socket_bytes += static_cast<int64_t>(
        s->transport->SendBufferCapacity() -
        s->transport->FreeSpace(Transport::kServer));
    sched_bytes += static_cast<int64_t>(s->server->buffered_bytes());
  }
  const SimTime wire_busy = std::max<SimTime>(0, nic_.busy_until() - now);
  auto drain_time = [this](int64_t bytes) {
    return static_cast<SimTime>(
        bytes * 8 * kSecond /
        std::max<int64_t>(1, options_.link.bandwidth_bps));
  };
  sig.nic_lag_us = wire_busy + drain_time(socket_bytes);
  // At degraded levels the ladder's socket-backlog budget caps socket bytes
  // at a few tens of KiB per session while the real backlog waits in the
  // update scheduler, so nic_lag under-reads uplink demand exactly while
  // degraded. The restore decision therefore also watches scheduler-resident
  // bytes (an upper bound on what still wants the wire — eviction and
  // coalescing only shrink it); restoring on the budget-capped socket metric
  // alone limit-cycles: restore -> socket refloods -> degrade again.
  sig.nic_demand_lag_us = wire_busy + drain_time(socket_bytes + sched_bytes);
  return sig;
}

void FleetHost::ControllerTick(SimTime until) {
  const SimTime now = loop_->now();
  const OverloadSignals sig = ComputeOverloadSignals();
  const SimTime cpu_lag = sig.cpu_lag_us;
  const SimTime nic_lag = sig.nic_lag_us;
  const SimTime nic_demand_lag = sig.nic_demand_lag_us;
  static Counter* ticks = MetricsRegistry::Get().GetCounter("fleet.controller_ticks");
  static Gauge* cpu_lag_g = MetricsRegistry::Get().GetGauge("fleet.cpu_lag_us");
  static Gauge* nic_lag_g = MetricsRegistry::Get().GetGauge("fleet.nic_lag_us");
  static Gauge* demand_g =
      MetricsRegistry::Get().GetGauge("fleet.nic_demand_lag_us");
  static Gauge* level_g = MetricsRegistry::Get().GetGauge("fleet.degrade_level");
  static Counter* downs = MetricsRegistry::Get().GetCounter("fleet.degradations");
  static Counter* ups = MetricsRegistry::Get().GetCounter("fleet.restores");
  // cpu.* — the shared host CPU seen as a multi-core account; sim.* — event
  // loop health (queue depth, churn), cheap to read here since the
  // controller already samples every resource each tick.
  static Gauge* cpu_cores_g = MetricsRegistry::Get().GetGauge("cpu.cores");
  static Gauge* cpu_max_lag_g =
      MetricsRegistry::Get().GetGauge("cpu.max_core_lag_us");
  static Gauge* cpu_min_lag_g =
      MetricsRegistry::Get().GetGauge("cpu.earliest_free_lag_us");
  static Gauge* cpu_busy_g =
      MetricsRegistry::Get().GetGauge("cpu.total_busy_us");
  static Gauge* sim_pending_g =
      MetricsRegistry::Get().GetGauge("sim.pending_events");
  static Gauge* sim_fired_g = MetricsRegistry::Get().GetGauge("sim.fired_events");
  static Gauge* sim_cancelled_g =
      MetricsRegistry::Get().GetGauge("sim.cancelled_events");
  ticks->Inc();
  cpu_lag_g->Set(cpu_lag);
  nic_lag_g->Set(nic_lag);
  demand_g->Set(nic_demand_lag);
  cpu_cores_g->Set(host_cpu_.cores());
  cpu_max_lag_g->Set(cpu_lag);
  cpu_min_lag_g->Set(std::max<SimTime>(0, host_cpu_.earliest_free() - now));
  cpu_busy_g->Set(host_cpu_.total_busy());
  sim_pending_g->Set(static_cast<int64_t>(loop_->pending_count()));
  sim_fired_g->Set(static_cast<int64_t>(loop_->fired_count()));
  sim_cancelled_g->Set(static_cast<int64_t>(loop_->cancelled_count()));

  if (options_.degradation_enabled) {
    // Degrade on host-wide pressure only: the shared CPU or NIC running
    // further behind than a burst can explain admits no per-session remedy —
    // every session sheds load together. Scheduler backlog is deliberately
    // not a *degrade* trigger (it pins high during any single page burst
    // even on an idle host), but it does gate *restores*: stepping back up
    // is only safe once the pent-up demand it represents has drained, not
    // merely once the budget-capped socket metric looks calm.
    const bool host_hot =
        cpu_lag > options_.overload_lag || nic_lag > options_.overload_lag;
    const bool demand_hot = nic_demand_lag > options_.overload_lag;
    int max_level = 0;
    for (auto& s : sessions_) {
      if (s == nullptr) {
        continue;  // migrated-out tombstone
      }
      if (host_hot) {
        s->under_ticks = 0;
        if (++s->over_ticks >= options_.ticks_to_degrade) {
          s->over_ticks = 0;
          const int level = s->server->degradation_level();
          if (level < kMaxDegradationLevel) {
            s->server->SetDegradationLevel(level + 1);
            downs->Inc();
          }
        }
      } else if (demand_hot) {
        // Hold the current level: not hot enough to degrade further, but the
        // backlog behind the socket budget would reflood the wire on
        // restore.
        s->over_ticks = 0;
        s->under_ticks = 0;
      } else {
        s->over_ticks = 0;
        if (++s->under_ticks >= options_.ticks_to_restore) {
          s->under_ticks = 0;
          const int level = s->server->degradation_level();
          if (level > 0) {
            s->server->SetDegradationLevel(level - 1);
            ups->Inc();
          }
        }
      }
      max_level = std::max(max_level, s->server->degradation_level());
    }
    level_g->Set(max_level);
  }

  if (now + options_.control_interval <= until) {
    loop_->Schedule(options_.control_interval,
                    [this, until] { ControllerTick(until); });
  } else {
    controller_running_ = false;
  }
}

}  // namespace thinc
