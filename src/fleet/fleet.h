// Multi-tenant THINC host: N independent server/client sessions sharing one
// simulated machine.
//
// The paper's scaling argument (Section 2: a single server "can maintain a
// large number of active thin clients") rests on the server-push, low-level
// command architecture staying cheap per session. Everything in the repo so
// far exercised one session per host — each ThincSystem got a private CPU
// account and a private wire, so inter-session contention was invisible. A
// FleetHost closes that gap with four pieces:
//
//   * Shared CPU — every session's ThincServer and WindowServer charge the
//     SAME CpuAccount, so per-session render/encode work serializes through
//     one host busy-until watermark exactly as the per-session work already
//     did on its private account. No new CPU model: contention emerges from
//     the existing charges landing on one queue.
//   * Shared NIC — every session's downstream (server→client) traffic is
//     arbitrated by a NicScheduler (weighted start-time fair queueing) in
//     front of its Connection, replacing the one-private-wire-per-connection
//     assumption. Upstream input traffic is negligible and keeps the
//     private wire.
//   * Admission control — a session is admitted only while the sum of
//     declared per-session demand fits under a configured CPU and NIC
//     headroom; beyond that it is parked (counted, not instantiated) or
//     rejected outright.
//   * Overload degradation — a periodic controller watches host CPU/NIC lag
//     and per-session backlog and walks each session up/down a 4-level
//     ladder of paper mechanisms (flush-window stretch, tighter scheduler
//     backlog cap, video decimation, SRSF starvation limit; see
//     ThincServer::SetDegradationLevel) so overload degrades per-session
//     quality gracefully instead of collapsing latency for everyone.
//
// Determinism: session i's workload seed is derived from the fleet seed by a
// bijective mix (distinct ids can never share a stream), all arbitration
// tie-breaks are by session/flow id, and the controller reads only
// virtual-time state — fleet runs are bit-reproducible and telemetry on/off
// cannot change wire bytes or virtual time. A 1-session fleet degenerates to
// the non-fleet ThincSystem path byte-for-byte.
#ifndef THINC_SRC_FLEET_FLEET_H_
#define THINC_SRC_FLEET_FLEET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/thinc_client.h"
#include "src/core/thinc_server.h"
#include "src/device/device.h"
#include "src/display/window_server.h"
#include "src/net/connection.h"
#include "src/net/loopback.h"
#include "src/net/lossy.h"
#include "src/net/nic.h"
#include "src/util/cpu.h"
#include "src/util/event_loop.h"
#include "src/util/prng.h"

namespace thinc {

// Declared per-session resource demand, used by admission control. Callers
// measure it once at N=1 (reference-speed CPU microseconds and downstream
// bytes per second of workload) and declare it for every further session.
struct FleetSessionDemand {
  double cpu_us_per_sec = 0;
  int64_t nic_bytes_per_sec = 0;
};

struct FleetOptions {
  int32_t screen_width = 1024;
  int32_t screen_height = 768;
  // The shared uplink and the per-session link characteristics. The link's
  // bandwidth field is the physical NIC rate: with one session attached the
  // shared wire is indistinguishable from a private link of that bandwidth.
  LinkParams link;
  // Host CPU speed relative to the reference machine (the testbed server is
  // 2.0x; see kServerCpuSpeed). Clients run at 1.0x.
  double cpu_speed = 2.0;
  // Cores on the shared host CPU (the paper's server is a dual-CPU PIII).
  // Session work spreads over the K per-core watermarks and large encodes
  // slice across idle cores; admission capacity scales linearly. Virtual
  // timing only — wire bytes are identical at any K (DESIGN.md §12).
  int cpu_cores = 1;
  uint64_t seed = 1;
  // Admission: sessions are admitted while the summed declared demand stays
  // under headroom * capacity on BOTH resources.
  double cpu_headroom = 0.9;
  double nic_headroom = 0.9;
  // Beyond-capacity sessions are parked (admissible later if capacity
  // frees) rather than rejected.
  bool park_beyond_capacity = true;
  // Per-session socket send buffer. Bytes committed here are un-sheddable
  // (the ladder's coalescing and fidelity downshift only reach the
  // scheduler), so deployments size it near the per-session share of the
  // link's bandwidth-delay product rather than the 256 KiB desktop default.
  size_t send_buffer_bytes = 256 << 10;
  // Overload controller: sampling period and per-session hysteresis (ticks
  // of sustained pressure before degrading, calm ticks before restoring).
  bool degradation_enabled = true;
  SimTime control_interval = 100 * kMillisecond;
  int ticks_to_degrade = 2;
  int ticks_to_restore = 10;
  // How far behind real time the shared CPU or NIC must run before the host
  // counts as overloaded. A transient page burst parks a bounded backlog
  // that drains within a burst time; genuine oversubscription grows the lag
  // without bound, so a threshold deeper than one burst separates the two.
  SimTime overload_lag = 500 * kMillisecond;
  // Template for every session's server (telemetry_host is overridden with
  // a per-session name so Chrome traces get one pid per session).
  ThincServerOptions server_options;
  ThincClientOptions client_options;
  // Transport for sessions added with local=true: co-located clients get a
  // shared-memory LoopbackTransport instead of a wire (no NIC contention;
  // handoffs and client decode charge the shared host CPU).
  LoopbackOptions loopback;
  // Chrome-trace host-name prefix for per-session pids (the slot id is
  // appended). A cluster overrides it per host ("cluster-h2-session-") so
  // traces from many hosts stay distinguishable.
  std::string session_name_prefix = "fleet-session-";
};

// One admitted session's complete state: the full server/client stack plus
// the identity (seed, PRNG stream, declared demand) that must survive a live
// migration to another FleetHost. Owned by its current host; ExtractSession
// releases it for a ClusterController to move.
struct FleetSession {
  size_t id = 0;  // slot index on the CURRENT host (reassigned on insert)
  uint64_t seed = 0;
  bool local = false;
  // Demand as DECLARED at cluster/fleet admission. Hosts account the
  // effective demand (NIC zeroed while local) so a session migrating from a
  // co-located slot back to a remote one regains its NIC share.
  FleetSessionDemand demand;
  // The device this session serves. Travels with the session across
  // migrations: the destination host rebuilds the same kind of transport
  // (lossy WAN for phones), reuses the profile's link override and decode
  // speed, and the controller keeps applying the profile's ladder.
  DeviceProfile profile;
  std::unique_ptr<Transport> transport;
  Connection* wire = nullptr;  // transport downcast; null when local
  // Transports retired by migration stay alive: scheduled loop events and
  // readable traces still reference them.
  std::vector<std::unique_ptr<Transport>> retired;
  std::unique_ptr<ThincServer> server;
  std::unique_ptr<WindowServer> ws;
  // Remote clients decode on their own terminal (1.0x); null for local
  // sessions, whose client shares the host CPU. Kept across migrations so a
  // local->remote switch reuses the same terminal account.
  std::unique_ptr<CpuAccount> client_cpu;
  std::unique_ptr<ThincClient> client;
  Prng prng{1};
  std::function<void(Point)> input_fn;
  // Controller hysteresis state (travels with the session: its degradation
  // level does too, and the new host's controller restores it when calm).
  int over_ticks = 0;
  int under_ticks = 0;
};

class FleetHost {
 public:
  enum class Admission { kAdmitted, kParked, kRejected };

  using InputFn = std::function<void(Point)>;

  FleetHost(EventLoop* loop, FleetOptions options);

  // Admission-checks `demand` and, if admitted, instantiates the session.
  // Remote sessions (local=false) get a wire Connection attached to the
  // shared NIC with `weight`, server/window server on the shared CPU, and a
  // client on its own 1.0x account. Local sessions (local=true) get a
  // LoopbackTransport: they bypass the NIC entirely — NIC attach is a
  // wire-transport capability — so only their CPU demand counts toward
  // admission, and their client decodes on the shared host CPU (it IS the
  // host). Returns the outcome; ids are assigned densely in admission order.
  //
  // `profile` describes the device the session serves (default: desktop,
  // which reproduces the historical behaviour byte-for-byte). A non-desktop
  // profile can override the per-session link, swap the wire for a lossy WAN
  // path (deterministic per-session loss seed), scale the client's decode
  // CPU, install a device-specific degradation schedule, and negotiate a
  // smaller viewport at session start.
  Admission AddSession(const FleetSessionDemand& demand, int64_t weight = 1,
                       bool local = false, const DeviceProfile& profile = {});

  // Deterministic per-session seed: a bijective splitmix64-style mix of
  // (fleet_seed, id), so two sessions of one fleet can never share a PRNG
  // stream (THINC_CHECKed against the effective seeds at session creation).
  static uint64_t DeriveSessionSeed(uint64_t fleet_seed, uint64_t session_id);

  // Starts the periodic overload controller; it stops rescheduling once the
  // next tick would land past `until`, so EventLoop::Run() terminates.
  void StartController(SimTime until);

  // --- Cluster hooks ---------------------------------------------------------
  // Instantaneous host pressure, the same math the periodic controller
  // samples: max-per-core CPU lag, NIC drain lag of socket-resident bytes,
  // and total uplink demand lag (sockets + scheduler backlogs).
  struct OverloadSignals {
    SimTime cpu_lag_us = 0;
    SimTime nic_lag_us = 0;
    SimTime nic_demand_lag_us = 0;
  };
  OverloadSignals ComputeOverloadSignals() const;
  // Would `demand` be admitted right now (no side effects)?
  bool CanAdmit(const FleetSessionDemand& demand, bool local = false) const {
    return FitsHeadroom(demand, local);
  }
  // Summed effective demand of the sessions currently on this host.
  double admitted_cpu_us_per_sec() const { return admitted_cpu_us_per_sec_; }
  int64_t admitted_nic_bytes_per_sec() const {
    return admitted_nic_bytes_per_sec_;
  }

  // Releases session `id` for a live migration: its transport is reset (the
  // client parks on its last applied frame; the server parks its virtual
  // display state — PR 1 reconnect machinery), its demand leaves this host's
  // admission sums, and its slot becomes a tombstone (other ids keep their
  // meaning; per-session accessors must not be called on it again).
  std::unique_ptr<FleetSession> ExtractSession(size_t id);
  // Installs a migrated-in session: admission-checks its declared demand,
  // builds a fresh transport on THIS host's NIC (or a loopback when
  // local=true), rebinds server/window-server compute to this host's CPU,
  // arms the differential resync, and reattaches the client (decode CPU
  // follows the transport kind). Returns the new slot id, or nullopt when
  // the demand does not fit — the session is handed back unmodified.
  std::optional<size_t> InsertSession(std::unique_ptr<FleetSession>* session,
                                      int64_t weight = 1, bool local = false);

  // --- Per-session access (id < session_count(), slot not extracted) --------
  size_t session_count() const { return sessions_.size(); }
  // Slots currently occupied (session_count() minus migrated-out tombstones).
  size_t live_session_count() const { return live_sessions_; }
  bool has_session(size_t id) const {
    return id < sessions_.size() && sessions_[id] != nullptr;
  }
  FleetSession* session(size_t id) { return sessions_[id].get(); }
  size_t parked_count() const { return parked_; }
  size_t rejected_count() const { return rejected_; }

  ThincServer* server(size_t id) { return sessions_[id]->server.get(); }
  ThincClient* client(size_t id) { return sessions_[id]->client.get(); }
  WindowServer* window_server(size_t id) { return sessions_[id]->ws.get(); }
  // The session's transport, whatever its kind.
  Transport* transport(size_t id) { return sessions_[id]->transport.get(); }
  // The wire connection of a remote session; null for local sessions.
  Connection* connection(size_t id) { return sessions_[id]->wire; }
  bool is_local(size_t id) const { return sessions_[id]->local; }
  size_t local_count() const { return local_count_; }
  // The session's device profile (desktop unless set at AddSession).
  const DeviceProfile& profile(size_t id) const {
    return sessions_[id]->profile;
  }
  // The session's private workload PRNG stream.
  Prng* prng(size_t id) { return &sessions_[id]->prng; }
  uint64_t session_seed(size_t id) const { return sessions_[id]->seed; }
  int degradation_level(size_t id) const {
    return sessions_[id]->server->degradation_level();
  }

  // A click at session `id`'s client (traverses the network like any input).
  void ClientClick(size_t id, Point location);
  // Application-side callback for session `id`'s real clicks (button > 0).
  void SetInputCallback(size_t id, InputFn fn);

  EventLoop* loop() { return loop_; }
  CpuAccount* host_cpu() { return &host_cpu_; }
  NicScheduler* nic() { return &nic_; }
  const FleetOptions& options() const { return options_; }

  // Predicted capacity in sessions for `demand` (admission math, exposed so
  // benches can report the predicted knee next to the measured one).
  int PredictedCapacity(const FleetSessionDemand& demand) const;

 private:
  bool FitsHeadroom(const FleetSessionDemand& demand, bool local) const;
  // Builds the session's transport on this host (wire on the shared NIC, or
  // loopback on the host CPU), stores it in `s`, and returns the CPU account
  // its client decodes on.
  CpuAccount* AttachTransport(FleetSession* s, int64_t weight, bool local);
  // Wires the server's input handler to the session's window server and
  // application callback.
  void BindInputHandler(FleetSession* s);
  void ControllerTick(SimTime until);
  size_t FramebufferBytes() const;

  EventLoop* loop_;
  FleetOptions options_;
  CpuAccount host_cpu_;
  NicScheduler nic_;
  // Slot id -> session; a migrated-out slot holds nullptr forever.
  std::vector<std::unique_ptr<FleetSession>> sessions_;
  // Summed EFFECTIVE demand of sessions currently on the host (local
  // sessions contribute no NIC share).
  double admitted_cpu_us_per_sec_ = 0;
  int64_t admitted_nic_bytes_per_sec_ = 0;
  size_t parked_ = 0;
  size_t rejected_ = 0;
  size_t local_count_ = 0;
  size_t live_sessions_ = 0;
  bool controller_running_ = false;
};

}  // namespace thinc

#endif  // THINC_SRC_FLEET_FLEET_H_
