// Robustness: mid-run connection reset, disconnected drawing under the
// scheduler's graceful-degradation cap, then reconnect + full resync.
// Reports per-phase delivery stats, recovery latency, and resync fidelity
// for each network configuration.
#include "bench/bench_common.h"
#include "src/measure/outage.h"

using namespace thinc;

namespace {

void RunConfig(const ExperimentConfig& config) {
  OutageScenarioResult r = RunOutageScenario(config);
  std::printf("%-6s %10.0f %10.1f %10.0f %10.0f %12.1f %14.1f %10.0f %10.0f %6lld %8s\n",
              r.config.c_str(),
              static_cast<double>(r.steady_bytes) / 1024.0,
              static_cast<double>(r.outage_bytes) / 1024.0,
              static_cast<double>(r.resync_bytes) / 1024.0,
              r.outage_ms,
              r.recovery_ms,
              r.recovery_with_client_ms,
              static_cast<double>(r.peak_buffered_bytes) / 1024.0,
              static_cast<double>(2 * r.framebuffer_bytes) / 1024.0,
              static_cast<long long>(r.overflow_coalesces),
              r.resynced ? "yes" : "NO");
  std::fflush(stdout);
}

}  // namespace

int main() {
  bench::PrintHeader("Robustness: Outage + Reconnect Resync",
                     "(THINC session through a hard connection reset)");
  std::printf("%-6s %10s %10s %10s %10s %12s %14s %10s %10s %6s %8s\n",
              "config", "steady_KB", "outage_KB", "resync_KB", "outage_ms",
              "recovery_ms", "rec+client_ms", "peak_buf_KB", "cap_KB",
              "coalsc", "resync");
  RunConfig(LanDesktopConfig());
  RunConfig(WanDesktopConfig());
  RunConfig(Pda80211gConfig());
  std::printf(
      "\nExpected shape: outage delivery is only the partially transferred\n"
      "page (the reset drops the rest); the backlog stays under the 2x\n"
      "framebuffer cap however long the outage lasts (coalesced into one\n"
      "snapshot); resync costs about one full-screen update — far less on\n"
      "the PDA, whose server-side resize shrinks the refresh; and the client\n"
      "is pixel-identical to the server's screen after recovery.\n");
  return 0;
}
