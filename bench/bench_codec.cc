// Codec ladder: the inter-frame delta rung and bandwidth-adaptive selection.
//
// Three artifacts:
//
//   1. Ladder rung sweep (Fig. 5/6 shape) — web data volume, A/V quality,
//      and desktop-repaint volume at each degradation level 0-4 on the LAN
//      (where the estimator alone never engages the delta rung, so each
//      level isolates what the LADDER adds). Level 2 is the new codec rung:
//      it forces delta coding BEFORE any fidelity loss, so desktop repaint
//      volume must drop at level 2 while the client stays pixel-exact.
//
//   2. WAN equal-fidelity A/B — the same desktop repaint stream over a
//      100 Mbit/s / 66 ms RTT wire with adaptive selection on vs off. The
//      66 ms RTT puts the selector on the (lossless) delta rung, so the
//      adaptive arm must deliver fewer bytes at zero pixel mismatch.
//
//   3. Starved-WAN latency A/B — 1 Mbit/s / 66 ms RTT, where serialization
//      dominates update latency. Adaptive selection (delta + subsample)
//      must cut the p95 round latency vs intra-only.
//
// Emits BENCH_codec.json (virtual quantities only: byte-identical across
// reruns). `--smoke` runs the scripts/check.sh gate: a short WAN A/B
// THINC_CHECKing that deltas engage, save bytes, and lose nothing.
#include "bench/bench_common.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/baselines/thinc_system.h"
#include "src/net/link.h"
#include "src/telemetry/metrics.h"
#include "src/util/logging.h"

using namespace thinc;

namespace {

constexpr int32_t kScreenW = 160, kScreenH = 120;
constexpr int32_t kWinW = 96, kWinH = 64;

LinkParams Wan100M() {
  return LinkParams{100'000'000, 66 * kMillisecond, 1 << 20, "wan-100M"};
}

LinkParams Wan1M() {
  return LinkParams{1'000'000, 66 * kMillisecond, 256 << 10, "wan-1M"};
}

int64_t CodecCounter(const char* name) {
  return MetricsRegistry::Get().GetCounter(name)->value();
}

// The delta-friendly desktop workload: a static photo-like textured window
// with a small box moving each round. Intra codecs re-encode every pixel of
// every repaint; the delta codec collapses the unchanged texture to SKIP
// runs.
std::vector<Pixel> WindowFrame(int32_t w, int32_t h, int round) {
  std::vector<Pixel> px(static_cast<size_t>(w) * h);
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      uint32_t hash = static_cast<uint32_t>(x) * 73856093u ^
                      static_cast<uint32_t>(y) * 19349663u;
      hash *= 2654435761u;
      px[static_cast<size_t>(y) * w + x] =
          MakePixel(static_cast<uint8_t>(hash), static_cast<uint8_t>(hash >> 8),
                    static_cast<uint8_t>(hash >> 16));
    }
  }
  const int32_t bx = (round * 24) % (w - 16);
  const int32_t by = (round * 8) % (h - 16);
  for (int32_t y = by; y < by + 16; ++y) {
    for (int32_t x = bx; x < bx + 16; ++x) {
      px[static_cast<size_t>(y) * w + x] = MakePixel(180, 30, 30);
    }
  }
  return px;
}

int64_t PercentileUs(std::vector<int64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

struct DesktopRun {
  int64_t bytes = 0;           // server->client wire volume
  int64_t delta_hits = 0;
  int64_t delta_fallbacks = 0;
  int64_t bytes_saved = 0;     // intra size - delta size, summed over hits
  int64_t mismatched_pixels = 0;  // client vs live screen after quiesce
  int64_t p95_round_us = 0;    // p95 of render -> last delivered byte
};

// `rounds` timed window repaints on one THINC session. Render instants are
// fixed virtual times, so every run of the same configuration is
// byte-identical.
DesktopRun RunDesktop(const LinkParams& link, bool adapt, int level, int rounds,
                      SimTime round_period) {
  const int64_t hits0 = CodecCounter("codec.delta_hits");
  const int64_t fb0 = CodecCounter("codec.delta_fallbacks");
  const int64_t saved0 = CodecCounter("codec.delta_bytes_saved");
  EventLoop loop;
  ThincServerOptions so;
  so.adapt.enabled = adapt;
  so.initial_degradation_level = level;
  ThincSystem sys(&loop, link, kScreenW, kScreenH, so);
  sys.window_server()->FillRect(kScreenDrawable, Rect{0, 0, kScreenW, kScreenH},
                                MakePixel(30, 60, 90));
  std::vector<int64_t> round_latency;
  for (int r = 0; r < rounds; ++r) {
    const SimTime render_at = loop.now();
    sys.window_server()->PutImage(kScreenDrawable, Rect{20, 20, kWinW, kWinH},
                                  WindowFrame(kWinW, kWinH, r));
    loop.RunUntil(render_at + round_period);
    round_latency.push_back(
        sys.connection()->LastDeliveryTo(Connection::kClient) - render_at);
  }
  loop.Run();
  DesktopRun out;
  out.bytes = sys.connection()->BytesDeliveredTo(Connection::kClient);
  out.delta_hits = CodecCounter("codec.delta_hits") - hits0;
  out.delta_fallbacks = CodecCounter("codec.delta_fallbacks") - fb0;
  out.bytes_saved = CodecCounter("codec.delta_bytes_saved") - saved0;
  const Surface& screen = sys.window_server()->screen();
  const Surface& fb = sys.client()->framebuffer();
  for (int32_t y = 0; y < screen.height(); ++y) {
    for (int32_t x = 0; x < screen.width(); ++x) {
      if (screen.At(x, y) != fb.At(x, y)) {
        ++out.mismatched_pixels;
      }
    }
  }
  out.p95_round_us = PercentileUs(std::move(round_latency), 0.95);
  return out;
}

// --- Ladder rung sweep -------------------------------------------------------

struct RungResult {
  int level = 0;
  double web_page_kb = 0;
  double web_latency_ms = 0;
  double av_quality = 0;
  int64_t av_bytes = 0;
  DesktopRun desktop;
};

RungResult RunRung(int level, int pages) {
  RungResult r;
  r.level = level;
  ThincServerOptions so;
  so.adapt.enabled = true;
  so.initial_degradation_level = level;
  const WebRunResult web = RunThincWebVariant(LanDesktopConfig(), so, pages);
  r.web_page_kb = web.AvgPageKb();
  r.web_latency_ms = web.AvgLatencyMs(false);
  // The A/V columns come from the variant runner so the rung applies there
  // too (decimation at 1+, fidelity subsampling at 3+).
  const AvRunResult av =
      RunThincAvVariant(LanDesktopConfig(), so, BenchClipDuration());
  r.av_quality = av.quality;
  r.av_bytes = av.bytes;
  r.desktop = RunDesktop(LanDesktopLink(), /*adapt=*/true, level, /*rounds=*/8,
                         500 * kMillisecond);
  return r;
}

// --- Smoke gate (scripts/check.sh) -------------------------------------------

int RunSmoke() {
  bench::PrintHeader("Codec smoke: WAN delta A/B gate",
                     "(6 desktop repaints; delta must engage, save bytes, "
                     "and lose nothing)");
  DesktopRun on = RunDesktop(Wan100M(), /*adapt=*/true, 0, 6, 500 * kMillisecond);
  DesktopRun off =
      RunDesktop(Wan100M(), /*adapt=*/false, 0, 6, 500 * kMillisecond);
  THINC_CHECK_MSG(on.delta_hits > 0, "delta rung never engaged on the WAN");
  THINC_CHECK_MSG(on.mismatched_pixels == 0 && off.mismatched_pixels == 0,
                  "delta coding must be lossless");
  THINC_CHECK_MSG(on.bytes < off.bytes,
                  "adaptive arm delivered no byte savings over intra-only");
  std::printf("adaptive %lld bytes (%lld delta frames) vs intra-only %lld "
              "bytes, both pixel-exact\n",
              static_cast<long long>(on.bytes),
              static_cast<long long>(on.delta_hits),
              static_cast<long long>(off.bytes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke();
  }

  bench::PrintHeader(
      "Codec ladder: inter-frame delta rung and adaptive selection",
      "(rung sweep on LAN; adaptive vs intra-only A/B on WAN)");

  // -- 1. Ladder rung sweep --
  const int pages = bench::WebPageCount();
  std::printf("\n-- Degradation rungs on LAN (%d web pages; 8 desktop "
              "repaints) --\n",
              pages);
  std::printf("%5s %11s %11s %11s %10s %13s %11s %10s\n", "level",
              "web_KB/page", "web_lat_ms", "av_quality", "av_KB",
              "desktop_KB", "delta_hits", "mismatch");
  std::vector<RungResult> rungs;
  for (int level = 0; level <= kMaxDegradationLevel; ++level) {
    RungResult r = RunRung(level, pages);
    std::printf("%5d %11.1f %11.1f %11.2f %10.1f %13.1f %11lld %10lld\n",
                r.level, r.web_page_kb, r.web_latency_ms, r.av_quality,
                static_cast<double>(r.av_bytes) / 1024.0,
                static_cast<double>(r.desktop.bytes) / 1024.0,
                static_cast<long long>(r.desktop.delta_hits),
                static_cast<long long>(r.desktop.mismatched_pixels));
    std::fflush(stdout);
    rungs.push_back(r);
  }
  // Level 2 is the codec rung: lossless delta before any fidelity loss.
  THINC_CHECK_MSG(rungs[2].desktop.delta_hits > 0,
                  "level 2 must force the delta rung");
  THINC_CHECK_MSG(rungs[2].desktop.mismatched_pixels == 0,
                  "the codec rung must stay pixel-exact");
  THINC_CHECK_MSG(rungs[2].desktop.bytes < rungs[1].desktop.bytes,
                  "the codec rung must cut desktop repaint volume before "
                  "fidelity subsampling is reached");

  // -- 2. WAN equal-fidelity A/B --
  constexpr int kAbRounds = 12;
  DesktopRun wan_on =
      RunDesktop(Wan100M(), /*adapt=*/true, 0, kAbRounds, 500 * kMillisecond);
  DesktopRun wan_off =
      RunDesktop(Wan100M(), /*adapt=*/false, 0, kAbRounds, 500 * kMillisecond);
  std::printf("\n-- WAN 100 Mbit/s / 66 ms RTT, %d repaints, equal fidelity --\n",
              kAbRounds);
  std::printf("%-12s %12s %12s %12s %12s %10s\n", "selection", "bytes",
              "delta_hits", "fallbacks", "saved", "mismatch");
  std::printf("%-12s %12lld %12lld %12lld %12lld %10lld\n", "adaptive",
              static_cast<long long>(wan_on.bytes),
              static_cast<long long>(wan_on.delta_hits),
              static_cast<long long>(wan_on.delta_fallbacks),
              static_cast<long long>(wan_on.bytes_saved),
              static_cast<long long>(wan_on.mismatched_pixels));
  std::printf("%-12s %12lld %12s %12s %12s %10lld\n", "intra-only",
              static_cast<long long>(wan_off.bytes), "-", "-", "-",
              static_cast<long long>(wan_off.mismatched_pixels));
  THINC_CHECK_MSG(wan_on.delta_hits > 0, "WAN RTT must engage the delta rung");
  THINC_CHECK_MSG(
      wan_on.mismatched_pixels == 0 && wan_off.mismatched_pixels == 0,
      "equal-fidelity arms must both be pixel-exact");
  THINC_CHECK_MSG(wan_on.bytes < wan_off.bytes,
                  "delta coding must reduce data volume vs intra-only at "
                  "equal fidelity");

  // -- 3. Starved-WAN latency A/B --
  constexpr int kP95Rounds = 16;
  DesktopRun slow_on =
      RunDesktop(Wan1M(), /*adapt=*/true, 0, kP95Rounds, 1500 * kMillisecond);
  DesktopRun slow_off =
      RunDesktop(Wan1M(), /*adapt=*/false, 0, kP95Rounds, 1500 * kMillisecond);
  std::printf("\n-- WAN 1 Mbit/s / 66 ms RTT, %d repaints --\n", kP95Rounds);
  std::printf("%-12s %12s %14s %12s\n", "selection", "bytes", "p95_round_ms",
              "mismatch");
  std::printf("%-12s %12lld %14.1f %12lld\n", "adaptive",
              static_cast<long long>(slow_on.bytes),
              static_cast<double>(slow_on.p95_round_us) / kMillisecond,
              static_cast<long long>(slow_on.mismatched_pixels));
  std::printf("%-12s %12lld %14.1f %12lld\n", "intra-only",
              static_cast<long long>(slow_off.bytes),
              static_cast<double>(slow_off.p95_round_us) / kMillisecond,
              static_cast<long long>(slow_off.mismatched_pixels));
  THINC_CHECK_MSG(slow_on.p95_round_us < slow_off.p95_round_us,
                  "adaptive selection must improve p95 update latency on a "
                  "starved WAN link");

  std::FILE* f = std::fopen("BENCH_codec.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"rungs\": [\n");
    for (size_t i = 0; i < rungs.size(); ++i) {
      const RungResult& r = rungs[i];
      std::fprintf(
          f,
          "    {\"level\": %d, \"web_page_kb\": %.3f, \"web_latency_ms\": "
          "%.3f, \"av_quality\": %.4f, \"av_bytes\": %lld, \"desktop_bytes\": "
          "%lld, \"desktop_delta_hits\": %lld, \"desktop_mismatched_pixels\": "
          "%lld}%s\n",
          r.level, r.web_page_kb, r.web_latency_ms, r.av_quality,
          static_cast<long long>(r.av_bytes),
          static_cast<long long>(r.desktop.bytes),
          static_cast<long long>(r.desktop.delta_hits),
          static_cast<long long>(r.desktop.mismatched_pixels),
          i + 1 < rungs.size() ? "," : "");
    }
    auto write_arm = [f](const char* name, const DesktopRun& r, bool last) {
      std::fprintf(f,
                   "    \"%s\": {\"bytes\": %lld, \"delta_hits\": %lld, "
                   "\"delta_fallbacks\": %lld, \"bytes_saved\": %lld, "
                   "\"p95_round_us\": %lld, \"mismatched_pixels\": %lld}%s\n",
                   name, static_cast<long long>(r.bytes),
                   static_cast<long long>(r.delta_hits),
                   static_cast<long long>(r.delta_fallbacks),
                   static_cast<long long>(r.bytes_saved),
                   static_cast<long long>(r.p95_round_us),
                   static_cast<long long>(r.mismatched_pixels),
                   last ? "" : ",");
    };
    std::fprintf(f, "  ],\n  \"wan_equal_fidelity\": {\n");
    write_arm("adaptive", wan_on, false);
    write_arm("intra_only", wan_off, true);
    std::fprintf(f, "  },\n  \"wan_starved\": {\n");
    write_arm("adaptive", slow_on, false);
    write_arm("intra_only", slow_off, true);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_codec.json\n");
  }
  std::printf(
      "\nExpected shape: the level-2 codec rung cuts desktop repaint volume\n"
      "with zero fidelity loss; on the WAN the estimator engages it without\n"
      "the ladder, and on a starved link delta+subsample cuts p95 latency.\n");
  return 0;
}
