// Ablation A2: SRSF multi-queue scheduling vs plain FIFO (Section 5).
//
// Workload: a user clicks while a large background transfer is in flight;
// the small interactive update ("pressed button") should be delivered
// quickly. SRSF + the real-time queue let it jump the bulk data; FIFO makes
// it wait. Measured: time from click-feedback drawing to the button pixels
// appearing at the client, across progressively larger background updates.
#include "bench/bench_common.h"

#include "src/baselines/thinc_system.h"
#include "src/util/prng.h"

using namespace thinc;

namespace {

SimTime ButtonFeedbackLatency(bool fifo, int32_t bg_size) {
  EventLoop loop;
  ThincServerOptions options;
  options.scheduler.fifo = fifo;
  LinkParams link{10'000'000, 2 * kMillisecond, 1 << 20, "mid"};  // modest link
  ThincSystem sys(&loop, link, 1024, 768, options);
  sys.SetInputCallback([](Point) {});
  sys.ClientClick(Point{900, 700});
  loop.Run();

  // Large noisy background update (a page render elsewhere on screen).
  Prng rng(1);
  std::vector<Pixel> noise(static_cast<size_t>(bg_size) * bg_size);
  for (Pixel& p : noise) {
    p = static_cast<Pixel>(rng.Next()) | 0xFF000000;
  }
  sys.window_server()->PutImage(kScreenDrawable, Rect{0, 0, bg_size, bg_size},
                                noise);
  // The button press feedback near the cursor.
  sys.window_server()->FillRect(kScreenDrawable, Rect{890, 690, 24, 16}, kWhite);
  SimTime t0 = loop.now();
  SimTime button_at = -1;
  std::function<void()> poll = [&] {
    if (button_at < 0 && sys.ClientFramebuffer()->At(900, 700) == kWhite) {
      button_at = loop.now();
      return;
    }
    if (button_at < 0 && loop.has_pending()) {
      loop.Schedule(kMillisecond, poll);
    }
  };
  loop.Schedule(kMillisecond, poll);
  loop.Run();
  return button_at < 0 ? -1 : button_at - t0;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: SRSF Scheduling vs FIFO (interactive response)",
                     "bg_update_px   srsf_ms   fifo_ms   speedup");
  for (int32_t bg : {128, 256, 384, 512, 640}) {
    SimTime srsf = ButtonFeedbackLatency(false, bg);
    SimTime fifo = ButtonFeedbackLatency(true, bg);
    std::printf("%9dx%-4d %9.1f %9.1f %8.1fx\n", bg, bg,
                static_cast<double>(srsf) / kMillisecond,
                static_cast<double>(fifo) / kMillisecond,
                static_cast<double>(fifo) / static_cast<double>(srsf));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected: SRSF keeps button feedback near-constant as the background\n"
      "update grows; FIFO response time scales with the bulk transfer size.\n");
  return 0;
}
