// Figure 6: A/V benchmark — total data transferred during playback.
#include "bench/bench_common.h"

using namespace thinc;

namespace {

void RunConfig(const ExperimentConfig& config,
               const std::vector<SystemKind>& systems, SimTime duration) {
  std::printf("\n-- %s Desktop --\n", config.name.c_str());
  std::printf("%-10s %10s %12s %10s\n", "system", "MB_total", "Mbps", "quality_%");
  for (SystemKind kind : systems) {
    AvRunResult r = RunAvBenchmark(kind, config, duration);
    std::printf("%-10s %10.1f %12.1f %10.1f\n", r.system.c_str(),
                static_cast<double>(r.bytes) / 1e6, r.bandwidth_mbps,
                r.quality * 100);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const SimTime duration = BenchClipDuration();
  bench::PrintHeader("Figure 6: A/V Benchmark - Total Data Transferred",
                     "(systems that drop video send less data at lower quality)");
  std::printf("clip duration: %.2f s (set THINC_AV_FULL=1 for the paper's 34.75 s)\n",
              static_cast<double>(duration) / kSecond);
  RunConfig(LanDesktopConfig(), bench::DesktopSystems(false), duration);
  RunConfig(WanDesktopConfig(), bench::DesktopSystems(true), duration);
  RunConfig(Pda80211gConfig(), bench::PdaSystems(), duration);
  std::printf(
      "\nPaper shape: local PC ~1.2 Mbps (encoded stream only); THINC ~24 Mbps of\n"
      "YV12 at 100%% quality (117 MB for the full clip), dropping to ~3.5 Mbps in\n"
      "the PDA configuration via server-side video resizing; systems sending less\n"
      "than THINC do so by dropping frames.\n");
  return 0;
}
