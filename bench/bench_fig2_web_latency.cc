// Figure 2: Web benchmark — average page latency per platform in the LAN
// Desktop, WAN Desktop, and 802.11g PDA configurations.
//
// Two measures per system, matching the paper's solid vs cross-hatched
// bars: network latency (packet-trace based) and the complete measure
// including client processing time. The paper could only instrument the
// client for X, VNC, NX, and THINC; the simulation reports both for all
// systems (the network-only column is the conservative comparison basis
// for ICA/RDP/GoToMyPC/Sun Ray, as in Section 8.2).
#include "bench/bench_common.h"

using namespace thinc;

namespace {

void RunConfig(const ExperimentConfig& config, const std::vector<SystemKind>& systems,
               int32_t pages) {
  std::printf("\n-- %s Desktop (%lld Mbps, %.1f ms RTT%s) --\n", config.name.c_str(),
              static_cast<long long>(config.link.bandwidth_bps / 1'000'000),
              static_cast<double>(config.link.rtt) / kMillisecond,
              config.viewport.has_value() ? ", 320x240 viewport" : "");
  std::printf("%-10s %14s %22s\n", "system", "net_latency_ms", "with_client_ms");
  for (SystemKind kind : systems) {
    WebRunResult r = RunWebBenchmark(kind, config, pages);
    std::printf("%-10s %14.0f %22.0f\n", r.system.c_str(), r.AvgLatencyMs(false),
                r.AvgLatencyMs(true));
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const int32_t pages = bench::WebPageCount();
  bench::PrintHeader("Figure 2: Web Benchmark - Average Page Latency",
                     "(average over the 54-page i-Bench-style suite)");
  std::printf("pages per run: %d\n", pages);
  RunConfig(LanDesktopConfig(), bench::DesktopSystems(/*include_gotomypc=*/false),
            pages);
  RunConfig(WanDesktopConfig(), bench::DesktopSystems(/*include_gotomypc=*/true),
            pages);
  RunConfig(Pda80211gConfig(), bench::PdaSystems(), pages);
  std::printf(
      "\nPaper shape: THINC fastest in every configuration (up to 1.7x LAN, 4.8x\n"
      "WAN vs others); THINC beats the local PC; X degrades ~2.5x LAN->WAN; NX\n"
      "between THINC and X; GoToMyPC ~3 s per page; sub-second for most systems.\n");
  return 0;
}
