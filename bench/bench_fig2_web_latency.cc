// Figure 2: Web benchmark — average page latency per platform in the LAN
// Desktop, WAN Desktop, and 802.11g PDA configurations.
//
// Two measures per system, matching the paper's solid vs cross-hatched
// bars: network latency (packet-trace based) and the complete measure
// including client processing time. The paper could only instrument the
// client for X, VNC, NX, and THINC; the simulation reports both for all
// systems (the network-only column is the conservative comparison basis
// for ICA/RDP/GoToMyPC/Sun Ray, as in Section 8.2).
#include "bench/bench_common.h"

using namespace thinc;

namespace {

void RunConfig(const ExperimentConfig& config, const std::vector<SystemKind>& systems,
               int32_t pages) {
  std::printf("\n-- %s Desktop (%lld Mbps, %.1f ms RTT%s) --\n", config.name.c_str(),
              static_cast<long long>(config.link.bandwidth_bps / 1'000'000),
              static_cast<double>(config.link.rtt) / kMillisecond,
              config.viewport.has_value() ? ", 320x240 viewport" : "");
  std::printf("%-10s %14s %22s\n", "system", "net_latency_ms", "with_client_ms");
  for (SystemKind kind : systems) {
    WebRunResult r = RunWebBenchmark(kind, config, pages);
    std::printf("%-10s %14.0f %22.0f\n", r.system.c_str(), r.AvgLatencyMs(false),
                r.AvgLatencyMs(true));
    std::fflush(stdout);
  }
}

// Telemetry-instrumented THINC run: per-page latency-breakdown table (mean
// per-update stage times from lifecycle spans) plus a Perfetto-loadable
// Chrome trace of the whole run.
void RunBreakdown(const ExperimentConfig& config, int32_t pages,
                  const char* trace_path) {
  WebBreakdownResult r =
      RunThincWebBreakdown(config, ThincServerOptions{}, pages, trace_path);
  std::printf("\n-- THINC stage breakdown, %s (mean per update, ms) --\n",
              config.name.c_str());
  std::printf("%-5s %9s %10s %8s %8s %10s %9s %8s %6s %9s\n", "page", "queue",
              "encode", "send", "net", "decode", "total", "updates", "hits",
              "wire_kb");
  for (size_t i = 0; i < r.pages.size(); ++i) {
    const StageBreakdown& b = r.pages[i];
    std::printf("%-5zu %9.3f %10.3f %8.3f %8.3f %10.3f %9.3f %8lld %6lld %9.1f\n",
                i, b.queue_ms, b.encode_ms, b.send_ms, b.network_ms, b.decode_ms,
                b.total_ms, static_cast<long long>(b.updates),
                static_cast<long long>(b.encode_cache_hits),
                static_cast<double>(b.wire_bytes) / 1024.0);
  }
  if (r.trace_written) {
    std::printf("wrote %s (load in Perfetto or chrome://tracing)\n", trace_path);
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  const int32_t pages = bench::WebPageCount();
  bench::PrintHeader("Figure 2: Web Benchmark - Average Page Latency",
                     "(average over the 54-page i-Bench-style suite)");
  std::printf("pages per run: %d\n", pages);
  RunConfig(LanDesktopConfig(), bench::DesktopSystems(/*include_gotomypc=*/false),
            pages);
  RunConfig(WanDesktopConfig(), bench::DesktopSystems(/*include_gotomypc=*/true),
            pages);
  RunConfig(Pda80211gConfig(), bench::PdaSystems(), pages);
  RunBreakdown(LanDesktopConfig(), pages, "TRACE_fig2_LAN.json");
  RunBreakdown(WanDesktopConfig(), pages, "TRACE_fig2_WAN.json");
  std::printf(
      "\nPaper shape: THINC fastest in every configuration (up to 1.7x LAN, 4.8x\n"
      "WAN vs others); THINC beats the local PC; X degrades ~2.5x LAN->WAN; NX\n"
      "between THINC and X; GoToMyPC ~3 s per page; sub-second for most systems.\n");
  return 0;
}
