// Ablation A3: server-push vs client-pull delivery (Section 5).
//
// Video playback is the update stream that exposes the pull model: updates
// are generated faster than the client can request them, so each round trip
// caps the frame rate. The same THINC server runs in both modes.
#include "bench/bench_common.h"

using namespace thinc;

int main() {
  const SimTime duration = BenchClipDuration();
  bench::PrintHeader("Ablation: Server-Push vs Client-Pull (video playback)",
                     "config   model   quality_%   frames   Mbps");
  for (const ExperimentConfig& config : {LanDesktopConfig(), WanDesktopConfig()}) {
    for (bool push : {true, false}) {
      ThincServerOptions options;
      options.server_push = push;
      AvRunResult r = RunThincAvVariant(config, options, duration);
      char frames[32];
      std::snprintf(frames, sizeof(frames), "%d/%d", r.frames_displayed,
                    r.frames_total);
      std::printf("%-8s %-6s %10.1f %9s %7.1f\n", config.name.c_str(),
                  push ? "push" : "pull", r.quality * 100, frames,
                  r.bandwidth_mbps);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected: push sustains 100%% everywhere; pull loses quality as RTT\n"
      "grows — the round trip per update batch bounds the deliverable frame\n"
      "rate (the mechanism behind VNC's WAN collapse in Figure 5).\n");
  return 0;
}
