// Ablation A1: THINC's offscreen drawing awareness (Section 4.1).
//
// The web workload composes pages through offscreen pixmap hierarchies the
// way Mozilla does; with tracking disabled, every offscreen-to-screen copy
// degenerates to the "last resort" RAW path — higher bandwidth and, above
// all, server compression CPU. The paper claims the tracking overhead is
// negligible while the win is substantial.
#include "bench/bench_common.h"

using namespace thinc;

int main() {
  const int32_t pages = bench::WebPageCount();
  bench::PrintHeader("Ablation: Offscreen Drawing Awareness (web workload)",
                     "config           tracking  latency_ms  KB_page  server_cpu_ms");
  for (const ExperimentConfig& config : {LanDesktopConfig(), WanDesktopConfig()}) {
    for (bool tracking : {true, false}) {
      ThincServerOptions options;
      options.offscreen_tracking = tracking;
      ThincVariantExtras extras;
      WebRunResult r = RunThincWebVariant(config, options, pages,
                                          /*skip_viewport=*/false, &extras);
      std::printf("%-16s %8s %11.0f %8.0f %14.0f\n", config.name.c_str(),
                  tracking ? "on" : "off", r.AvgLatencyMs(true), r.AvgPageKb(),
                  static_cast<double>(extras.server_cpu_busy) / kMillisecond /
                      pages);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected: tracking off costs extra bytes and noticeably more server CPU\n"
      "per page (pixel readback + compression), while tracking itself is nearly\n"
      "free — the Section 4.1 claim.\n");
  return 0;
}
