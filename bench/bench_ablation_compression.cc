// Ablation A5: PNG-like compression of RAW updates (Section 7).
//
// RAW is the only THINC command that gets compressed; the image-heavy pages
// of the web suite are where it matters (the pages where the paper observed
// THINC falling back to "RAW encoding ... combined with simple,
// off-the-shelf compression"). Reports the whole suite and the big-image
// pages separately.
#include "bench/bench_common.h"

#include "src/workload/web.h"

using namespace thinc;

namespace {

struct SplitStats {
  double image_kb = 0;
  double other_kb = 0;
  double image_ms = 0;
  double other_ms = 0;
};

SplitStats Split(const WebRunResult& r, const WebWorkload& workload) {
  SplitStats s;
  int images = 0;
  int others = 0;
  for (size_t i = 0; i < r.pages.size(); ++i) {
    if (workload.page(static_cast<int32_t>(i)).big_image_page) {
      s.image_kb += static_cast<double>(r.pages[i].bytes) / 1024.0;
      s.image_ms += r.pages[i].latency_with_client_ms;
      ++images;
    } else {
      s.other_kb += static_cast<double>(r.pages[i].bytes) / 1024.0;
      s.other_ms += r.pages[i].latency_with_client_ms;
      ++others;
    }
  }
  if (images > 0) {
    s.image_kb /= images;
    s.image_ms /= images;
  }
  if (others > 0) {
    s.other_kb /= others;
    s.other_ms /= others;
  }
  return s;
}

}  // namespace

int main() {
  const int32_t pages = bench::WebPageCount();
  bench::PrintHeader(
      "Ablation: RAW Compression (PNG-like codec on/off)",
      "config  compress  imgpage_KB  imgpage_ms  otherpage_KB  otherpage_ms");
  for (const ExperimentConfig& config : {LanDesktopConfig(), WanDesktopConfig()}) {
    WebWorkload workload(config.screen_width, config.screen_height);
    for (bool compress : {true, false}) {
      ThincServerOptions options;
      options.compress_raw = compress;
      WebRunResult r = RunThincWebVariant(config, options, pages);
      SplitStats s = Split(r, workload);
      std::printf("%-7s %9s %11.0f %11.0f %13.0f %13.0f\n", config.name.c_str(),
                  compress ? "on" : "off", s.image_kb, s.image_ms, s.other_kb,
                  s.other_ms);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected: compression shrinks the single-large-image pages severalfold\n"
      "(at some encode CPU); text/fill pages barely change because they ship as\n"
      "semantic commands, not RAW — the Section 8.3 page-by-page observation.\n");
  return 0;
}
