// Figure 7: THINC A/V quality using the Table 2 remote sites, with each
// site's relative bandwidth (Iperf) as in the paper's combined figure.
#include "bench/bench_common.h"

using namespace thinc;

int main() {
  const SimTime duration = BenchClipDuration();
  bench::PrintHeader("Figure 7: A/V Benchmark - THINC Quality, Remote Sites",
                     "site   quality_%   bandwidth_Mbps   rel_bw_vs_LAN");
  double lan_bw = MeasureIperfMbps(LanDesktopLink());
  AvRunResult lan = RunAvBenchmark(SystemKind::kThinc, LanDesktopConfig(), duration);
  std::printf("%-5s %9.1f %16.1f %15.2f\n", "LAN", lan.quality * 100, lan_bw, 1.0);
  for (const RemoteSite& site : RemoteSites()) {
    AvRunResult r =
        RunAvBenchmark(SystemKind::kThinc, RemoteSiteConfig(site), duration);
    double bw = MeasureIperfMbps(site.link);
    std::printf("%-5s %9.1f %16.1f %15.2f\n", site.name.c_str(), r.quality * 100, bw,
                bw / lan_bw);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape: 100%% A/V quality at every site except Korea, whose 256 KB\n"
      "PlanetLab TCP window across a ~150 ms RTT caps throughput below the\n"
      "~24 Mbps the video stream needs.\n");
  return 0;
}
