// Shared helpers for the figure/table reproduction binaries.
//
// Each bench prints the rows of one paper artifact (Figures 2-7, Table 2)
// in a fixed-width text table, using the same system sets per network
// configuration as Section 8.1:
//   * LAN/WAN Desktop: ICA, RDP, X, NX, Sun Ray, VNC, THINC (+ local PC
//     baseline); GoToMyPC only in WAN (it is an Internet-routed service).
//   * 802.11g PDA: only the systems that support a client geometry
//     different from the server's — ICA, RDP, GoToMyPC, VNC, THINC.
#ifndef THINC_BENCH_BENCH_COMMON_H_
#define THINC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/measure/experiment.h"
#include "src/util/buffer.h"

namespace thinc {
namespace bench {

inline std::vector<SystemKind> DesktopSystems(bool include_gotomypc) {
  std::vector<SystemKind> systems = {
      SystemKind::kIca,  SystemKind::kRdp,    SystemKind::kX,
      SystemKind::kNx,   SystemKind::kSunRay, SystemKind::kVnc,
      SystemKind::kThinc};
  if (include_gotomypc) {
    systems.insert(systems.begin() + 2, SystemKind::kGotomypc);
  }
  systems.push_back(SystemKind::kLocalPc);
  return systems;
}

inline std::vector<SystemKind> PdaSystems() {
  return {SystemKind::kIca, SystemKind::kRdp, SystemKind::kGotomypc,
          SystemKind::kVnc, SystemKind::kThinc};
}

inline int32_t WebPageCount() {
  const char* env = std::getenv("THINC_WEB_PAGES");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 54;  // the full i-Bench-style suite
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n%s\n", title);
  for (size_t i = 0; i < std::string(title).size(); ++i) {
    std::putchar('=');
  }
  std::printf("\n%s\n", columns);
}

// --- Buffer-traffic instrumentation -----------------------------------------
//
// Benches that want to attribute cost to data movement snapshot the global
// BufferStats counters around a workload and report the deltas (the
// simulation is single-threaded, so a snapshot pair brackets exactly the
// bracketed work).

inline BufferStats SnapshotBufferStats() { return BufferStats::Get(); }

// Counter deltas of `end` relative to `start` (peak/live are taken from
// `end` as-is: they are levels, not counters).
inline BufferStats BufferStatsDelta(const BufferStats& start,
                                    const BufferStats& end) {
  BufferStats d = end;
  d.allocations -= start.allocations;
  d.allocated_bytes -= start.allocated_bytes;
  d.copies -= start.copies;
  d.copied_bytes -= start.copied_bytes;
  d.shares -= start.shares;
  d.cow_detaches -= start.cow_detaches;
  d.arena_reuses -= start.arena_reuses;
  d.raw_encodes -= start.raw_encodes;
  d.encode_charges -= start.encode_charges;
  d.payload_encode_hits -= start.payload_encode_hits;
  d.frame_cache_hits -= start.frame_cache_hits;
  return d;
}

inline void PrintBufferStats(const char* label, const BufferStats& s) {
  std::printf(
      "%-12s allocs=%-8lld alloc_MB=%-7.1f memcpys=%-8lld copied_MB=%-7.1f\n"
      "%-12s shares=%-8lld cow=%-5lld arena_reuse=%-5lld encodes=%-6lld "
      "enc_hits=%lld peak_MB=%.1f\n",
      label, static_cast<long long>(s.allocations),
      static_cast<double>(s.allocated_bytes) / (1024.0 * 1024.0),
      static_cast<long long>(s.copies),
      static_cast<double>(s.copied_bytes) / (1024.0 * 1024.0), "",
      static_cast<long long>(s.shares), static_cast<long long>(s.cow_detaches),
      static_cast<long long>(s.arena_reuses),
      static_cast<long long>(s.raw_encodes),
      static_cast<long long>(s.payload_encode_hits + s.frame_cache_hits),
      static_cast<double>(s.peak_payload_bytes) / (1024.0 * 1024.0));
}

// One `"name": {...}` JSON object for a stats delta (no trailing newline).
inline void WriteBufferStatsJson(std::FILE* f, const char* name,
                                 const BufferStats& s, double commands_per_sec) {
  std::fprintf(
      f,
      "  \"%s\": {\n"
      "    \"commands_per_sec\": %.0f,\n"
      "    \"allocations\": %lld,\n"
      "    \"allocated_bytes\": %lld,\n"
      "    \"memcpy_calls\": %lld,\n"
      "    \"memcpy_bytes\": %lld,\n"
      "    \"shares\": %lld,\n"
      "    \"cow_detaches\": %lld,\n"
      "    \"arena_reuses\": %lld,\n"
      "    \"raw_encodes\": %lld,\n"
      "    \"encode_cache_hits\": %lld,\n"
      "    \"peak_payload_bytes\": %lld\n"
      "  }",
      name, commands_per_sec, static_cast<long long>(s.allocations),
      static_cast<long long>(s.allocated_bytes),
      static_cast<long long>(s.copies), static_cast<long long>(s.copied_bytes),
      static_cast<long long>(s.shares), static_cast<long long>(s.cow_detaches),
      static_cast<long long>(s.arena_reuses),
      static_cast<long long>(s.raw_encodes),
      static_cast<long long>(s.payload_encode_hits + s.frame_cache_hits),
      static_cast<long long>(s.peak_payload_bytes));
}

}  // namespace bench
}  // namespace thinc

#endif  // THINC_BENCH_BENCH_COMMON_H_
