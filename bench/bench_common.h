// Shared helpers for the figure/table reproduction binaries.
//
// Each bench prints the rows of one paper artifact (Figures 2-7, Table 2)
// in a fixed-width text table, using the same system sets per network
// configuration as Section 8.1:
//   * LAN/WAN Desktop: ICA, RDP, X, NX, Sun Ray, VNC, THINC (+ local PC
//     baseline); GoToMyPC only in WAN (it is an Internet-routed service).
//   * 802.11g PDA: only the systems that support a client geometry
//     different from the server's — ICA, RDP, GoToMyPC, VNC, THINC.
#ifndef THINC_BENCH_BENCH_COMMON_H_
#define THINC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/measure/experiment.h"

namespace thinc {
namespace bench {

inline std::vector<SystemKind> DesktopSystems(bool include_gotomypc) {
  std::vector<SystemKind> systems = {
      SystemKind::kIca,  SystemKind::kRdp,    SystemKind::kX,
      SystemKind::kNx,   SystemKind::kSunRay, SystemKind::kVnc,
      SystemKind::kThinc};
  if (include_gotomypc) {
    systems.insert(systems.begin() + 2, SystemKind::kGotomypc);
  }
  systems.push_back(SystemKind::kLocalPc);
  return systems;
}

inline std::vector<SystemKind> PdaSystems() {
  return {SystemKind::kIca, SystemKind::kRdp, SystemKind::kGotomypc,
          SystemKind::kVnc, SystemKind::kThinc};
}

inline int32_t WebPageCount() {
  const char* env = std::getenv("THINC_WEB_PAGES");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 54;  // the full i-Bench-style suite
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n%s\n", title);
  for (size_t i = 0; i < std::string(title).size(); ++i) {
    std::putchar('=');
  }
  std::printf("\n%s\n", columns);
}

}  // namespace bench
}  // namespace thinc

#endif  // THINC_BENCH_BENCH_COMMON_H_
