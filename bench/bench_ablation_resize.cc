// Ablation A4: server-side display resizing (Section 6).
//
// Small-screen client on the 802.11g PDA network, three strategies:
//   * THINC server resize (RAW/PFILL resampled, BITMAP->RAW, SFILL as-is),
//   * no resize support at all (full-size updates, client shows them 1:1),
//   * client-side resize (ICA model: full-size data + slow client resample)
//     and viewport clipping (RDP/VNC model), via the baselines.
#include "bench/bench_common.h"

using namespace thinc;

int main() {
  const int32_t pages = bench::WebPageCount();
  const SimTime duration = BenchClipDuration();
  ExperimentConfig pda = Pda80211gConfig();

  bench::PrintHeader("Ablation: Server-Side Resize (802.11g PDA, 320x240 client)",
                     "strategy             web_ms  web_KB/page   av_quality_%  av_Mbps");

  struct Row {
    const char* name;
    WebRunResult web;
    AvRunResult av;
  };
  std::vector<Row> rows;

  ThincServerOptions defaults;
  rows.push_back(Row{"THINC server-resize",
                     RunThincWebVariant(pda, defaults, pages),
                     RunThincAvVariant(pda, defaults, duration)});
  rows.push_back(Row{"THINC no-resize",
                     RunThincWebVariant(pda, defaults, pages, /*skip_viewport=*/true),
                     RunThincAvVariant(pda, defaults, duration,
                                       /*skip_viewport=*/true)});
  rows.push_back(Row{"ICA client-resize",
                     RunWebBenchmark(SystemKind::kIca, pda, pages),
                     RunAvBenchmark(SystemKind::kIca, pda, duration)});
  rows.push_back(Row{"RDP clipping", RunWebBenchmark(SystemKind::kRdp, pda, pages),
                     RunAvBenchmark(SystemKind::kRdp, pda, duration)});
  rows.push_back(Row{"VNC clipping", RunWebBenchmark(SystemKind::kVnc, pda, pages),
                     RunAvBenchmark(SystemKind::kVnc, pda, duration)});

  for (const Row& row : rows) {
    std::printf("%-20s %7.0f %12.0f %14.1f %8.1f\n", row.name,
                row.web.AvgLatencyMs(true), row.web.AvgPageKb(),
                row.av.quality * 100, row.av.bandwidth_mbps);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected: server resize cuts bandwidth by >2x vs no-resize with little\n"
      "latency cost and keeps video at 100%% within a few Mbps; ICA's client\n"
      "resize saves no bandwidth and adds client latency; clipping sends less\n"
      "but shows only a corner of the desktop.\n");
  return 0;
}
