// Microbenchmarks (google-benchmark): throughput of the substrate pieces
// the system-level results rest on — codecs, raster ops, region algebra,
// the Fant resampler, and YUV conversion — plus a buffer-architecture
// section that A/B-measures server-side data movement (zero-copy vs the
// legacy eager-copy behaviour) over an offscreen-heavy web workload.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_common.h"
#include "src/telemetry/telemetry.h"
#include "src/codec/delta.h"
#include "src/codec/hextile.h"
#include "src/codec/lzss.h"
#include "src/codec/pnglike.h"
#include "src/codec/rc4.h"
#include "src/codec/rle.h"
#include "src/codec/rle32.h"
#include "src/raster/fant.h"
#include "src/raster/surface.h"
#include "src/raster/yuv.h"
#include "src/baselines/thinc_system.h"
#include "src/util/logging.h"
#include "src/util/prng.h"
#include "src/util/region.h"
#include "src/workload/web.h"

namespace thinc {
namespace {

std::vector<Pixel> ScreenLikePixels(int32_t w, int32_t h) {
  // Mixed content: flat band, gradient band, noise band.
  Prng rng(7);
  std::vector<Pixel> px(static_cast<size_t>(w) * h);
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      Pixel p;
      if (y < h / 3) {
        p = MakePixel(236, 236, 240);
      } else if (y < 2 * h / 3) {
        p = MakePixel(static_cast<uint8_t>(x), 90, static_cast<uint8_t>(y));
      } else {
        p = static_cast<Pixel>(rng.Next()) | 0xFF000000;
      }
      px[static_cast<size_t>(y) * w + x] = p;
    }
  }
  return px;
}

void BM_Rc4(benchmark::State& state) {
  std::vector<uint8_t> key(16, 0x5A);
  Rc4Cipher cipher(key);
  std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)), 0x42);
  std::vector<uint8_t> out(buf.size());
  for (auto _ : state) {
    cipher.Process(buf, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_Rc4)->Arg(64 << 10);

void BM_LzssEncode(benchmark::State& state) {
  std::vector<Pixel> px = ScreenLikePixels(256, 256);
  std::span<const uint8_t> bytes(reinterpret_cast<const uint8_t*>(px.data()),
                                 px.size() * 4);
  for (auto _ : state) {
    std::vector<uint8_t> enc = LzssEncode(bytes);
    benchmark::DoNotOptimize(enc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes.size());
}
BENCHMARK(BM_LzssEncode);

void BM_PngLikeEncode(benchmark::State& state) {
  std::vector<Pixel> px = ScreenLikePixels(256, 256);
  for (auto _ : state) {
    std::vector<uint8_t> enc = PngLikeEncode(px, 256, 256);
    benchmark::DoNotOptimize(enc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * px.size() * 4);
}
BENCHMARK(BM_PngLikeEncode);

void BM_PngLikeDecode(benchmark::State& state) {
  std::vector<Pixel> px = ScreenLikePixels(256, 256);
  std::vector<uint8_t> enc = PngLikeEncode(px, 256, 256);
  for (auto _ : state) {
    std::vector<Pixel> dec;
    bool ok = PngLikeDecode(enc, 256, 256, &dec);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * px.size() * 4);
}
BENCHMARK(BM_PngLikeDecode);

void BM_HextileEncode(benchmark::State& state) {
  std::vector<Pixel> px = ScreenLikePixels(256, 256);
  for (auto _ : state) {
    std::vector<uint8_t> enc = HextileEncode(px, 256, 256);
    benchmark::DoNotOptimize(enc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * px.size() * 4);
}
BENCHMARK(BM_HextileEncode);

void BM_Rle32Encode(benchmark::State& state) {
  std::vector<Pixel> px = ScreenLikePixels(256, 256);
  for (auto _ : state) {
    std::vector<uint8_t> enc = Rle32Encode(px);
    benchmark::DoNotOptimize(enc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * px.size() * 4);
}
BENCHMARK(BM_Rle32Encode);

void BM_DeltaEncodeSmallChange(benchmark::State& state) {
  // The adaptive rung's common case: one dirty block in an otherwise
  // unchanged frame — the diff walk dominates, the literal encode is tiny.
  std::vector<Pixel> ref = ScreenLikePixels(256, 256);
  std::vector<Pixel> cur = ref;
  cur[128 * 256 + 128] = kBlack;
  for (auto _ : state) {
    std::vector<uint8_t> enc = DeltaEncode(ref, cur, 256, 256);
    benchmark::DoNotOptimize(enc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * ref.size() * 4);
}
BENCHMARK(BM_DeltaEncodeSmallChange);

void BM_DeltaEncodeScroll(benchmark::State& state) {
  // Worst useful case: everything moved, nothing matches in place — row
  // hashing, vote counting, and COPY verification all run.
  std::vector<Pixel> ref = ScreenLikePixels(256, 256);
  std::vector<Pixel> cur(ref.size());
  std::copy(ref.begin() + 16 * 256, ref.end(), cur.begin());
  std::copy(ref.begin(), ref.begin() + 16 * 256, cur.end() - 16 * 256);
  for (auto _ : state) {
    std::vector<uint8_t> enc = DeltaEncode(ref, cur, 256, 256);
    benchmark::DoNotOptimize(enc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * ref.size() * 4);
}
BENCHMARK(BM_DeltaEncodeScroll);

void BM_DeltaDecode(benchmark::State& state) {
  std::vector<Pixel> ref = ScreenLikePixels(256, 256);
  std::vector<Pixel> cur = ref;
  for (int32_t y = 96; y < 160; ++y) {
    for (int32_t x = 96; x < 160; ++x) {
      cur[static_cast<size_t>(y) * 256 + x] = kWhite;
    }
  }
  std::vector<uint8_t> enc = DeltaEncode(ref, cur, 256, 256);
  for (auto _ : state) {
    std::vector<Pixel> out;
    bool ok = DeltaDecode(enc, ref, 256, 256, &out);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * ref.size() * 4);
}
BENCHMARK(BM_DeltaDecode);

// --- SegmentQueue / frame fragmentation --------------------------------------
//
// The socket send path: frames append as zero-copy views and drain in
// MSS-sized pops; a failed partial send prepends the remainder. These ops
// bound how fast the simulator can push bytes through every Connection.

void BM_SegmentQueueAppendPop(benchmark::State& state) {
  const ByteBuffer frame =
      ByteBuffer::Adopt(std::vector<uint8_t>(64 << 10, 0x42));
  SegmentQueue q;
  for (auto _ : state) {
    q.Append(frame.Share());
    while (!q.empty()) {
      ByteBuffer seg = q.PopUpTo(1460);
      benchmark::DoNotOptimize(seg.size());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (64 << 10));
}
BENCHMARK(BM_SegmentQueueAppendPop);

void BM_SegmentQueuePartialSendRequeue(benchmark::State& state) {
  // Pop an MSS, send half, put the rest back — the stalled-socket pattern.
  const ByteBuffer frame =
      ByteBuffer::Adopt(std::vector<uint8_t>(16 << 10, 0x42));
  SegmentQueue q;
  for (auto _ : state) {
    q.Append(frame.Share());
    while (!q.empty()) {
      ByteBuffer seg = q.PopUpTo(1460);
      if (seg.size() > 730) {
        q.Prepend(seg.Slice(730, seg.size() - 730));
      }
      benchmark::DoNotOptimize(q.size());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (16 << 10));
}
BENCHMARK(BM_SegmentQueuePartialSendRequeue);

void BM_RawCommandSplitOff(benchmark::State& state) {
  // Socket-space-limited commit: a screen-sized RAW splits into send-buffer
  // sized parts, each sharing the original pixel storage.
  std::vector<Pixel> px = ScreenLikePixels(512, 256);
  const Rect rect{0, 0, 512, 256};
  RawCommand base(rect, px);
  PixelBuffer shared = base.SharePayload();
  for (auto _ : state) {
    RawCommand cmd(rect, shared.Share());
    int parts = 0;
    while (auto part = cmd.SplitOff(64 << 10)) {
      ++parts;
      benchmark::DoNotOptimize(part->region().Area());
    }
    benchmark::DoNotOptimize(parts);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * px.size() * 4);
}
BENCHMARK(BM_RawCommandSplitOff);

// --- Telemetry stamp sites ---------------------------------------------------
//
// Every update stamps up to 8 lifecycle points; these two benches bound the
// per-update cost with spans on and confirm the stamp sites collapse to
// no-ops when telemetry is off.

void StampOneUpdate(Telemetry& telemetry, SimTime t) {
  const uint64_t id = telemetry.NewUpdateSpan(1, /*server_pid=*/1, t);
  telemetry.StampPicked(id, t + 1);
  telemetry.StampEncode(id, t + 1, t + 2, /*cache_hit=*/false);
  telemetry.StampCommit(id, t + 3, 1460);
  telemetry.NoteFrameCommitted(id, t + 3);
  telemetry.StampDelivered(id, /*client_pid=*/2, t + 4);
  telemetry.StampDecoded(id, t + 5);
  telemetry.StampDamaged(id, t + 6);
}

void BM_TelemetryStampsOn(benchmark::State& state) {
  Telemetry& telemetry = Telemetry::Get();
  TelemetryConfig cfg;
  cfg.spans = true;
  telemetry.Configure(cfg);
  telemetry.ResetRuntime();
  SimTime t = 0;
  size_t since_reset = 0;
  for (auto _ : state) {
    StampOneUpdate(telemetry, t);
    t += 10;
    if (++since_reset == 4096) {  // bound the span vector
      state.PauseTiming();
      telemetry.ResetRuntime();
      since_reset = 0;
      state.ResumeTiming();
    }
  }
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryStampsOn);

void BM_TelemetryStampsOff(benchmark::State& state) {
  Telemetry& telemetry = Telemetry::Get();
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  SimTime t = 0;
  for (auto _ : state) {
    StampOneUpdate(telemetry, t);
    t += 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryStampsOff);

void BM_SurfaceFill(benchmark::State& state) {
  Surface s(1024, 768);
  for (auto _ : state) {
    s.FillRect(Rect{0, 0, 1024, 768}, kWhite);
    benchmark::DoNotOptimize(s.At(512, 384));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024 * 768 * 4);
}
BENCHMARK(BM_SurfaceFill);

void BM_SurfaceScrollCopy(benchmark::State& state) {
  Surface s(1024, 768);
  for (auto _ : state) {
    s.CopyFrom(s, Rect{0, 8, 1024, 760}, Point{0, 0});
    benchmark::DoNotOptimize(s.At(0, 0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024 * 760 * 4);
}
BENCHMARK(BM_SurfaceScrollCopy);

void BM_FantDownscale(benchmark::State& state) {
  Surface s(1024, 768);
  std::vector<Pixel> px = ScreenLikePixels(1024, 768);
  s.PutPixels(Rect{0, 0, 1024, 768}, px);
  for (auto _ : state) {
    Surface out = FantResample(s, 320, 240);
    benchmark::DoNotOptimize(out.At(0, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FantDownscale);

void BM_YuvFrameToRgbFullScreen(benchmark::State& state) {
  Yv12Frame frame = Yv12Frame::Allocate(352, 240);
  for (auto _ : state) {
    Surface out = Yv12ScaleToRgb(frame, 1024, 768);
    benchmark::DoNotOptimize(out.At(0, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_YuvFrameToRgbFullScreen);

void BM_RegionUnionSweep(benchmark::State& state) {
  Prng rng(3);
  std::vector<Rect> rects;
  for (int i = 0; i < 64; ++i) {
    rects.push_back(Rect{static_cast<int32_t>(rng.NextBelow(900)),
                         static_cast<int32_t>(rng.NextBelow(600)),
                         static_cast<int32_t>(rng.NextInRange(4, 120)),
                         static_cast<int32_t>(rng.NextInRange(4, 90))});
  }
  for (auto _ : state) {
    Region r = Region::FromRects(rects);
    benchmark::DoNotOptimize(r.Area());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_RegionUnionSweep);

void BM_ThincFullPageSimulation(benchmark::State& state) {
  // End-to-end simulator throughput: one web page rendered, translated,
  // scheduled, encrypted, transmitted, and applied at the client.
  for (auto _ : state) {
    EventLoop loop;
    ThincSystem sys(&loop, LanDesktopLink(), 1024, 768);
    WebWorkload workload(1024, 768);
    workload.RenderPage(sys.api(), 1, sys.app_cpu());
    loop.Run();
    benchmark::DoNotOptimize(sys.BytesToClient());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThincFullPageSimulation);

// --- Buffer architecture A/B -------------------------------------------------
//
// Translation-and-flush throughput over an offscreen-heavy web workload
// (every page composites through pixmaps, so queue copies, encodes, and
// send-queue traffic dominate server-side data movement). The same workload
// runs twice: zero-copy buffers on, then the legacy eager-copy emulation.
// Wire bytes and virtual time are identical by construction; only physical
// data movement differs.

struct BufferRun {
  BufferStats stats;
  int64_t commands = 0;
  double commands_per_sec = 0;
};

BufferRun RunBufferWorkload(bool zero_copy) {
  SetZeroCopyMode(zero_copy);
  // Phase boundary: A/B sections must never bleed counts into each other —
  // reset the buffer counters, the metrics registry, and any telemetry
  // runtime state together.
  BufferStats::Get().Reset();
  MetricsRegistry::Get().ResetAll();
  Telemetry::Get().ResetRuntime();
  auto t0 = std::chrono::steady_clock::now();
  EventLoop loop;
  ThincSystem sys(&loop, LanDesktopLink(), 1024, 768);
  WebWorkload workload(1024, 768);
  const int32_t pages = 12;
  for (int32_t p = 0; p < pages; ++p) {
    workload.RenderPage(sys.api(), p, sys.app_cpu());
    loop.Run();
  }
  auto t1 = std::chrono::steady_clock::now();
  BufferRun r;
  r.stats = BufferStats::Get();
  r.commands = sys.client()->commands_applied();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  r.commands_per_sec = secs > 0 ? static_cast<double>(r.commands) / secs : 0;
  SetZeroCopyMode(true);
  return r;
}

void RunBufferSection() {
  bench::PrintHeader("Buffer architecture: zero-copy vs legacy eager-copy",
                     "(12 offscreen-heavy web pages, LAN link)");
  BufferRun zc = RunBufferWorkload(true);
  BufferRun legacy = RunBufferWorkload(false);
  std::printf("zero-copy:   %9.0f commands/sec  (%lld commands)\n",
              zc.commands_per_sec, static_cast<long long>(zc.commands));
  bench::PrintBufferStats("", zc.stats);
  std::printf("legacy:      %9.0f commands/sec  (%lld commands)\n",
              legacy.commands_per_sec, static_cast<long long>(legacy.commands));
  bench::PrintBufferStats("", legacy.stats);
  auto ratio = [](int64_t legacy_v, int64_t zc_v) {
    return zc_v > 0 ? static_cast<double>(legacy_v) / static_cast<double>(zc_v)
                    : 0.0;
  };
  std::printf(
      "reduction:   %.1fx bytes memcpy'd, %.1fx allocations, "
      "%.1fx peak payload bytes\n",
      ratio(legacy.stats.copied_bytes, zc.stats.copied_bytes),
      ratio(legacy.stats.allocations, zc.stats.allocations),
      ratio(legacy.stats.peak_payload_bytes, zc.stats.peak_payload_bytes));

  std::FILE* f = std::fopen("BENCH_buffers.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    bench::WriteBufferStatsJson(f, "zero_copy", zc.stats, zc.commands_per_sec);
    std::fprintf(f, ",\n");
    bench::WriteBufferStatsJson(f, "legacy", legacy.stats,
                                legacy.commands_per_sec);
    std::fprintf(f, ",\n  \"reduction\": {\n");
    std::fprintf(f, "    \"memcpy_bytes\": %.2f,\n",
                 ratio(legacy.stats.copied_bytes, zc.stats.copied_bytes));
    std::fprintf(f, "    \"allocations\": %.2f,\n",
                 ratio(legacy.stats.allocations, zc.stats.allocations));
    std::fprintf(f, "    \"peak_payload_bytes\": %.2f\n",
                 ratio(legacy.stats.peak_payload_bytes,
                       zc.stats.peak_payload_bytes));
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_buffers.json\n");
  }
}

// --- Telemetry overhead / zero-cost-when-off invariant ------------------------

struct TelemetryRun {
  int64_t bytes = 0;       // server->client wire bytes
  SimTime end_time = 0;    // virtual time at quiescence
  int64_t commands = 0;    // commands applied at the client
  double wall_secs = 0;
  size_t spans = 0;
  size_t trace_events = 0;
};

TelemetryRun RunTelemetryWorkload(bool telemetry_on) {
  Telemetry& telemetry = Telemetry::Get();
  TelemetryConfig cfg;
  if (telemetry_on) {
    cfg.spans = true;
    cfg.chrome_trace = true;
    cfg.flight_recorder = true;
  }
  telemetry.Configure(cfg);
  telemetry.ResetRuntime();
  MetricsRegistry::Get().ResetAll();
  BufferStats::Get().Reset();
  auto t0 = std::chrono::steady_clock::now();
  EventLoop loop;
  ThincSystem sys(&loop, LanDesktopLink(), 1024, 768);
  WebWorkload workload(1024, 768);
  for (int32_t p = 0; p < 8; ++p) {
    workload.RenderPage(sys.api(), p, sys.app_cpu());
    loop.Run();
  }
  auto t1 = std::chrono::steady_clock::now();
  TelemetryRun r;
  r.bytes = sys.BytesToClient();
  r.end_time = loop.now();
  r.commands = sys.client()->commands_applied();
  r.wall_secs = std::chrono::duration<double>(t1 - t0).count();
  r.spans = telemetry.spans().size();
  r.trace_events = telemetry.events().size();
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  return r;
}

void RunTelemetrySection() {
  bench::PrintHeader("Telemetry: overhead and zero-cost-when-off invariant",
                     "(8 web pages, LAN link; off vs spans+trace+recorder)");
  TelemetryRun off = RunTelemetryWorkload(false);
  TelemetryRun on = RunTelemetryWorkload(true);
  // The structural invariant: telemetry never touches wire bytes or virtual
  // time, so a fully instrumented run must be result-identical to a bare one.
  THINC_CHECK_MSG(on.bytes == off.bytes, "telemetry changed wire bytes");
  THINC_CHECK_MSG(on.end_time == off.end_time, "telemetry changed virtual time");
  THINC_CHECK_MSG(on.commands == off.commands, "telemetry changed results");
  std::printf("off: %8.0f KB wire, vtime %.3f s, %.3f s wall\n",
              static_cast<double>(off.bytes) / 1024.0,
              static_cast<double>(off.end_time) / kSecond, off.wall_secs);
  std::printf("on:  %8.0f KB wire, vtime %.3f s, %.3f s wall  "
              "(%zu spans, %zu trace events)\n",
              static_cast<double>(on.bytes) / 1024.0,
              static_cast<double>(on.end_time) / kSecond, on.wall_secs, on.spans,
              on.trace_events);
  std::printf("invariant held: identical wire bytes and virtual time; "
              "wall-clock overhead %.2fx\n",
              off.wall_secs > 0 ? on.wall_secs / off.wall_secs : 0.0);
}

}  // namespace
}  // namespace thinc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  thinc::RunBufferSection();
  thinc::RunTelemetrySection();
  return 0;
}
