// Transport cost: co-located loopback vs the simulated TCP wire.
//
// The classic thin-client lab co-locates some clients with the server — a
// console session, a second head, a terminal on the same machine. For
// those there is no wire: LoopbackTransport hands encoded frames to the
// client as ref-counted buffers for a per-handoff CPU charge. This bench
// measures what that buys:
//
//   1. Co-located A/B — the paper's web benchmark through one ThincSystem
//      over the LAN wire vs the loopback (encryption off on both arms: RC4
//      forces a payload copy, and there is nothing to snoop on a same-host
//      handoff). Reports page latency, bytes, host CPU, and the zero-copy
//      evidence: memcpy'd payload bytes on the loopback must be ZERO while
//      the wire's SegmentQueue/socket path copies every frame at least
//      once into its send buffer.
//   2. Mixed fleet sweep — N sessions on one NIC-bound host, all-remote vs
//      half-local. Local sessions bypass the NIC entirely (their cost is
//      CPU handoffs), so converting half the population to local moves the
//      capacity knee out at equal N — the "terminal room next to the
//      server room" deployment shape.
//
// Emits BENCH_transport.json. `--smoke` runs the scripts/check.sh gate: a
// short co-located web run THINC_CHECKing that the loopback delivered
// frame payload by reference (payload bytes > 0, memcpy'd payload == 0).
#include "bench/bench_common.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/net/loopback.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"
#include "src/workload/web.h"

using namespace thinc;

namespace {

int64_t LoopbackCounter(const char* name) {
  return MetricsRegistry::Get().GetCounter(name)->value();
}

// --- Co-located A/B ----------------------------------------------------------

struct ColocatedArm {
  WebRunResult web;
  SimTime server_cpu_busy = 0;
  // BufferStats delta across the run (includes workload/raster copies, the
  // same on both arms; the transport is the only thing that changes).
  int64_t copied_bytes = 0;
  // transport.loopback.* (zero on the wire arm).
  int64_t handoffs = 0;
  int64_t payload_bytes = 0;
  int64_t payload_copied_bytes = 0;
};

ColocatedArm RunColocatedArm(TransportKind kind, int pages) {
  MetricsRegistry::Get().ResetAll();
  ExperimentConfig config =
      kind == TransportKind::kWire ? LanDesktopConfig() : LocalLoopbackConfig();
  ThincServerOptions options;
  options.encrypt = false;
  ThincVariantExtras extras;
  const BufferStats before = BufferStats::Get();
  ColocatedArm arm;
  arm.web = RunThincWebVariant(config, options, pages, /*skip_viewport=*/false,
                               &extras);
  arm.copied_bytes = BufferStats::Get().copied_bytes - before.copied_bytes;
  arm.server_cpu_busy = extras.server_cpu_busy;
  arm.handoffs = LoopbackCounter("transport.loopback.handoffs");
  arm.payload_bytes = LoopbackCounter("transport.loopback.payload_bytes");
  arm.payload_copied_bytes =
      LoopbackCounter("transport.loopback.payload_copied_bytes");
  return arm;
}

// --- Mixed local/remote fleet sweep ------------------------------------------

// NIC-bound provisioning, as in bench_fleet_capacity's web sweep: the host
// CPU is fast and the shared downlink is the scarce resource — exactly the
// resource local sessions do not consume.
constexpr int32_t kScreenW = 512;
constexpr int32_t kScreenH = 384;
constexpr uint64_t kSeed = 11;
constexpr SimTime kThink = 1500 * kMillisecond;
constexpr double kCpuSpeed = 16.0;
constexpr double kKneeMs = 1000.0;

LinkParams FleetNic() {
  return LinkParams{1'000'000, 20 * kMillisecond, 256 << 10, "fleet-nic"};
}

int64_t PercentileUs(std::vector<int64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

struct FleetRun {
  int n = 0;
  int locals = 0;
  double pooled_p95_ms = 0;
  int64_t wire_bytes = 0;      // server->client over the shared NIC
  int64_t loopback_bytes = 0;  // server->client over in-host handoffs
  SimTime host_cpu_busy = 0;
  SimTime end_vtime = 0;
  int64_t spans_completed = 0;
};

// Open-loop web fleet with the first `locals` of `n` sessions co-located
// (interleaved across the click stagger so locality is not confounded with
// arrival phase).
FleetRun RunMixedFleet(int n, int locals, int pages_per_session) {
  Telemetry& telemetry = Telemetry::Get();
  TelemetryConfig tcfg;
  tcfg.spans = true;
  telemetry.Configure(tcfg);
  telemetry.ResetRuntime();
  MetricsRegistry::Get().ResetAll();

  EventLoop loop;
  FleetOptions fo;
  fo.screen_width = kScreenW;
  fo.screen_height = kScreenH;
  fo.link = FleetNic();
  fo.cpu_speed = kCpuSpeed;
  fo.send_buffer_bytes = 32 << 10;
  fo.seed = kSeed;
  // Raw capacity, not degraded capacity: the ladder would blur the knee.
  fo.degradation_enabled = false;
  FleetHost fleet(&loop, fo);
  std::vector<bool> is_local(static_cast<size_t>(n), false);
  for (int i = 0, placed = 0; i < n; ++i) {
    // Interleave: every other session is local until the quota is placed.
    const bool local = placed < locals && (i % 2 == 0 || n - i <= locals - placed);
    placed += local ? 1 : 0;
    is_local[static_cast<size_t>(i)] = local;
    THINC_CHECK(fleet.AddSession({}, /*weight=*/1, local) ==
                FleetHost::Admission::kAdmitted);
  }
  WebWorkload web(kScreenW, kScreenH, kSeed);
  std::vector<int> next_page(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const size_t id = static_cast<size_t>(i);
    fleet.SetInputCallback(id, [&fleet, &web, &next_page, id](Point) {
      const int32_t page = static_cast<int32_t>(
          (static_cast<int>(id) * 7 + next_page[id]) % web.page_count());
      ++next_page[id];
      web.RenderPage(fleet.window_server(id), page, fleet.host_cpu());
    });
  }
  const SimTime stagger = kThink / n;
  SimTime last_click = 0;
  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < pages_per_session; ++p) {
      const SimTime t = i * stagger + p * kThink;
      last_click = std::max(last_click, t);
      const size_t id = static_cast<size_t>(i);
      loop.ScheduleAt(t, [&fleet, &web, id, p] {
        fleet.ClientClick(id, web.LinkPosition(p % web.page_count()));
      });
    }
  }
  fleet.StartController(last_click + 5 * kSecond);
  loop.Run();

  FleetRun r;
  r.n = n;
  r.locals = locals;
  r.end_vtime = loop.now();
  r.host_cpu_busy = fleet.host_cpu()->total_busy();
  std::map<int, size_t> pid_to_session;
  for (int i = 0; i < n; ++i) {
    const size_t id = static_cast<size_t>(i);
    const int64_t bytes =
        fleet.transport(id)->BytesDeliveredTo(Transport::kClient);
    (is_local[id] ? r.loopback_bytes : r.wire_bytes) += bytes;
    pid_to_session[fleet.server(id)->telemetry_pid()] = id;
  }
  std::vector<int64_t> pooled;
  for (const UpdateSpan& s : telemetry.spans()) {
    if (s.completed()) {
      ++r.spans_completed;
      pooled.push_back(s.damaged.ts - s.queued.ts);
    }
  }
  r.pooled_p95_ms =
      static_cast<double>(PercentileUs(std::move(pooled), 0.95)) / kMillisecond;
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  return r;
}

std::vector<int> SweepSizes() {
  std::vector<int> sizes = {2, 4, 6, 8, 12, 16};
  const char* env = std::getenv("THINC_FLEET_MAX_N");
  if (env != nullptr && std::atoi(env) > 0) {
    const int max_n = std::atoi(env);
    std::erase_if(sizes, [max_n](int s) { return s > max_n; });
  }
  return sizes;
}

int Knee(const std::vector<FleetRun>& runs, bool mixed) {
  int best = 0;
  for (const FleetRun& r : runs) {
    if ((r.locals > 0) == mixed && r.pooled_p95_ms <= kKneeMs) {
      best = std::max(best, r.n);
    }
  }
  return best;
}

// --- Smoke gate (scripts/check.sh) -------------------------------------------

int RunSmoke() {
  bench::PrintHeader("Transport smoke: loopback zero-copy gate",
                     "(co-located web run; payload must move by reference)");
  ColocatedArm local = RunColocatedArm(TransportKind::kLoopback, /*pages=*/2);
  THINC_CHECK_MSG(local.payload_bytes > 0,
                  "loopback carried no frame payload — the gate is vacuous");
  THINC_CHECK_MSG(local.payload_copied_bytes == 0,
                  "loopback memcpy'd frame payload; the zero-copy handoff "
                  "path regressed");
  std::printf("co-located web: %lld payload bytes over %lld handoffs, "
              "0 memcpy'd — zero-copy holds\n",
              static_cast<long long>(local.payload_bytes),
              static_cast<long long>(local.handoffs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke();
  }

  bench::PrintHeader(
      "Transport cost: co-located loopback vs simulated TCP wire",
      "(web benchmark per arm; then a mixed local/remote fleet sweep)");

  // -- Co-located A/B --
  const int pages = bench::WebPageCount();
  ColocatedArm wire = RunColocatedArm(TransportKind::kWire, pages);
  ColocatedArm local = RunColocatedArm(TransportKind::kLoopback, pages);
  std::printf("\n-- Web, one session, encryption off (%d pages) --\n", pages);
  std::printf("%-10s %12s %12s %14s %16s %14s\n", "transport", "latency_ms",
              "page_KB", "srv_cpu_ms", "copied_bytes", "payload_copy");
  std::printf("%-10s %12.1f %12.1f %14.1f %16lld %14s\n", "wire",
              wire.web.AvgLatencyMs(false), wire.web.AvgPageKb(),
              static_cast<double>(wire.server_cpu_busy) / kMillisecond,
              static_cast<long long>(wire.copied_bytes), "n/a");
  std::printf("%-10s %12.1f %12.1f %14.1f %16lld %14lld\n", "loopback",
              local.web.AvgLatencyMs(false), local.web.AvgPageKb(),
              static_cast<double>(local.server_cpu_busy) / kMillisecond,
              static_cast<long long>(local.copied_bytes),
              static_cast<long long>(local.payload_copied_bytes));
  std::printf("loopback: %lld handoffs, %lld payload bytes by reference, "
              "%lld memcpy'd\n",
              static_cast<long long>(local.handoffs),
              static_cast<long long>(local.payload_bytes),
              static_cast<long long>(local.payload_copied_bytes));
  THINC_CHECK_MSG(local.payload_bytes > 0 && local.payload_copied_bytes == 0,
                  "loopback frame payload must move by reference");

  // -- Mixed fleet sweep --
  std::printf("\n-- Fleet on a %.0f Mbps NIC: all-remote vs half-local --\n",
              static_cast<double>(FleetNic().bandwidth_bps) / 1'000'000);
  std::printf("%4s %7s %14s %14s %16s %12s\n", "N", "locals", "pooled_p95_ms",
              "nic_bytes", "loopback_bytes", "host_cpu_ms");
  const int fleet_pages = 3;
  std::vector<FleetRun> runs;
  for (int n : SweepSizes()) {
    for (int locals : {0, n / 2}) {
      FleetRun r = RunMixedFleet(n, locals, fleet_pages);
      std::printf("%4d %7d %14.1f %14lld %16lld %12.1f\n", r.n, r.locals,
                  r.pooled_p95_ms, static_cast<long long>(r.wire_bytes),
                  static_cast<long long>(r.loopback_bytes),
                  static_cast<double>(r.host_cpu_busy) / kMillisecond);
      std::fflush(stdout);
      runs.push_back(std::move(r));
    }
  }
  const int knee_remote = Knee(runs, /*mixed=*/false);
  const int knee_mixed = Knee(runs, /*mixed=*/true);
  std::printf("capacity knee (largest N with pooled p95 <= %.0f ms): "
              "all-remote -> %d sessions, half-local -> %d sessions\n",
              kKneeMs, knee_remote, knee_mixed);
  THINC_CHECK_MSG(knee_mixed > knee_remote,
                  "half-local fleet must out-scale all-remote on a NIC-bound "
                  "host: local sessions are supposed to bypass the NIC");

  std::FILE* f = std::fopen("BENCH_transport.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"colocated_web\": {\n    \"pages\": %d,\n", pages);
    std::fprintf(f,
                 "    \"wire\": {\"latency_ms\": %.3f, \"page_kb\": %.3f, "
                 "\"server_cpu_us\": %lld, \"copied_bytes\": %lld},\n",
                 wire.web.AvgLatencyMs(false), wire.web.AvgPageKb(),
                 static_cast<long long>(wire.server_cpu_busy),
                 static_cast<long long>(wire.copied_bytes));
    std::fprintf(f,
                 "    \"loopback\": {\"latency_ms\": %.3f, \"page_kb\": %.3f, "
                 "\"server_cpu_us\": %lld, \"copied_bytes\": %lld, "
                 "\"handoffs\": %lld, \"payload_bytes\": %lld, "
                 "\"payload_copied_bytes\": %lld}\n  },\n",
                 local.web.AvgLatencyMs(false), local.web.AvgPageKb(),
                 static_cast<long long>(local.server_cpu_busy),
                 static_cast<long long>(local.copied_bytes),
                 static_cast<long long>(local.handoffs),
                 static_cast<long long>(local.payload_bytes),
                 static_cast<long long>(local.payload_copied_bytes));
    std::fprintf(f,
                 "  \"fleet\": {\n    \"nic_bps\": %lld, \"pages_per_session\": "
                 "%d, \"knee_all_remote\": %d, \"knee_half_local\": %d,\n"
                 "    \"sweep\": [\n",
                 static_cast<long long>(FleetNic().bandwidth_bps), fleet_pages,
                 knee_remote, knee_mixed);
    for (size_t i = 0; i < runs.size(); ++i) {
      const FleetRun& r = runs[i];
      std::fprintf(f,
                   "      {\"n\": %d, \"locals\": %d, \"p95_ms\": %.3f, "
                   "\"nic_bytes\": %lld, \"loopback_bytes\": %lld, "
                   "\"host_cpu_busy_us\": %lld, \"end_vtime_us\": %lld, "
                   "\"updates_completed\": %lld}%s\n",
                   r.n, r.locals, r.pooled_p95_ms,
                   static_cast<long long>(r.wire_bytes),
                   static_cast<long long>(r.loopback_bytes),
                   static_cast<long long>(r.host_cpu_busy),
                   static_cast<long long>(r.end_vtime),
                   static_cast<long long>(r.spans_completed),
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_transport.json\n");
  }
  std::printf(
      "\nExpected shape: loopback pages arrive with zero payload memcpys and\n"
      "no wire serialization; in the fleet, half-local halves NIC load so the\n"
      "capacity knee sits beyond the all-remote knee at equal N.\n");
  return 0;
}
