// Figure 3: Web benchmark — average data transferred per page.
#include "bench/bench_common.h"

using namespace thinc;

namespace {

void RunConfig(const ExperimentConfig& config, const std::vector<SystemKind>& systems,
               int32_t pages) {
  std::printf("\n-- %s Desktop --\n", config.name.c_str());
  std::printf("%-10s %14s\n", "system", "KB_per_page");
  for (SystemKind kind : systems) {
    WebRunResult r = RunWebBenchmark(kind, config, pages);
    std::printf("%-10s %14.0f\n", r.system.c_str(), r.AvgPageKb());
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const int32_t pages = bench::WebPageCount();
  bench::PrintHeader("Figure 3: Web Benchmark - Average Page Data Transferred",
                     "(server-to-client bytes per page)");
  std::printf("pages per run: %d\n", pages);
  RunConfig(LanDesktopConfig(), bench::DesktopSystems(false), pages);
  RunConfig(WanDesktopConfig(), bench::DesktopSystems(true), pages);
  RunConfig(Pda80211gConfig(), bench::PdaSystems(), pages);
  std::printf(
      "\nPaper shape: local PC least data; among thin clients THINC is smallest\n"
      "except NX (LAN) and 8-bit GoToMyPC (WAN); THINC sends ~half of VNC's\n"
      "data; server-side resize cuts THINC's PDA data by >2x vs its desktop\n"
      "volume while ICA's client resize saves nothing.\n");
  return 0;
}
