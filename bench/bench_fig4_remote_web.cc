// Figure 4: THINC average web page latency using the Table 2 remote sites
// (the headless instrumented client of Section 8.1).
#include "bench/bench_common.h"

using namespace thinc;

int main() {
  const int32_t pages = bench::WebPageCount();
  bench::PrintHeader("Figure 4: Web Benchmark - THINC Page Latency, Remote Sites",
                     "site   rtt_ms   latency_ms   vs_LAN");
  WebRunResult lan = RunWebBenchmark(SystemKind::kThinc, LanDesktopConfig(), pages);
  std::printf("%-5s %7.1f %12.0f %8.2fx\n", "LAN", 0.2, lan.AvgLatencyMs(true), 1.0);
  for (const RemoteSite& site : RemoteSites()) {
    WebRunResult r =
        RunWebBenchmark(SystemKind::kThinc, RemoteSiteConfig(site), pages);
    std::printf("%-5s %7.1f %12.0f %8.2fx\n", site.name.c_str(),
                static_cast<double>(site.link.rtt) / kMillisecond,
                r.AvgLatencyMs(true), r.AvgLatencyMs(true) / lan.AvgLatencyMs(true));
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape: sub-second everywhere except Korea; latency grows <2.5x to\n"
      "Finland while RTT grows >100x over the LAN.\n");
  return 0;
}
