// Heterogeneous device matrix: per-device-class interactive quality and the
// mixed-population capacity argument.
//
// The paper evaluates one client class on clean pipes; a deployed host
// serves a MATRIX of devices — PC desktops, smartphone-class remote
// displays on lossy WAN paths, Pi-class terminals — each with its own
// panel, decode CPU, input cadence, and degradation ladder. This bench
// measures two things that matrix changes:
//
//   1. Device-class table — one session per canonical profile
//      (desktop / phone / terminal), driven by ITS OWN replayable input
//      trace (typing bursts, flick scrolls, sparse kiosk taps). Reports
//      per-class update latency (p50/p95 of queued->applied spans), bytes
//      shipped, retransmission count on the lossy path, and decode CPU.
//   2. Mixed-vs-uniform capacity sweep — N web sessions on one NIC-bound
//      host, all-desktop vs a 1/3-desktop / 1/3-phone / 1/3-terminal mix.
//      Phone viewports are a quarter of the hosted area, so the shared
//      NIC carries proportionally less and the capacity knee of the mixed
//      population sits at or beyond the uniform-desktop knee.
//
// Emits BENCH_devices.json. `--smoke` runs the scripts/check.sh gate: the
// device-class table twice at short duration, THINC_CHECKing that the two
// passes produce byte-identical JSON (the determinism contract for the
// device tier) and that the phone arm negotiated its panel and actually
// saw loss.
#include "bench/bench_common.h"

#include <algorithm>
#include <cstdarg>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "src/device/device.h"
#include "src/fleet/fleet.h"
#include "src/net/lossy.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"
#include "src/workload/input_trace.h"
#include "src/workload/web.h"

using namespace thinc;

namespace {

constexpr int32_t kScreenW = 512;
constexpr int32_t kScreenH = 384;
constexpr uint64_t kSeed = 13;
constexpr double kKneeMs = 1000.0;

LinkParams AccessLan() {
  return LinkParams{100'000'000, 20 * kMillisecond, 1 << 20, "device-lan"};
}

// The NIC-bound sweep link (the scarce resource of the capacity argument).
LinkParams FleetNic() {
  return LinkParams{1'000'000, 20 * kMillisecond, 256 << 10, "device-nic"};
}

// Phone profile scaled to the bench host: canonical smartphone class,
// ladder, loss model, and decode speed, with a quarter-area panel of the
// hosted desktop and the session link left to the shared NIC.
DeviceProfile BenchPhone() {
  DeviceProfile p = SmartphoneProfile();
  p.screen_width = kScreenW / 2;
  p.screen_height = kScreenH / 2;
  p.link.reset();
  return p;
}

int64_t PercentileUs(std::vector<int64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// --- Device-class table ------------------------------------------------------

struct ClassRun {
  const char* name = "";
  size_t events = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  int64_t bytes = 0;
  int64_t segments_lost = 0;  // lossy-path retransmissions; 0 on clean wires
  SimTime decode_busy = 0;
  int32_t view_w = 0;
  int32_t view_h = 0;
};

// One session of `profile` on an otherwise idle host, driven by the
// profile's own input cadence for `duration` of virtual time. Keystrokes
// echo a glyph-sized update, scrolls repaint a content band, taps load a
// full web page — the per-class interactive mix.
ClassRun RunDeviceClass(const char* name, const DeviceProfile& profile,
                        SimTime duration) {
  Telemetry& telemetry = Telemetry::Get();
  TelemetryConfig tcfg;
  tcfg.spans = true;
  telemetry.Configure(tcfg);
  telemetry.ResetRuntime();
  MetricsRegistry::Get().ResetAll();

  EventLoop loop;
  FleetOptions fo;
  fo.screen_width = kScreenW;
  fo.screen_height = kScreenH;
  fo.link = AccessLan();
  fo.cpu_speed = 16.0;
  fo.seed = kSeed;
  fo.degradation_enabled = false;
  FleetHost fleet(&loop, fo);
  THINC_CHECK(fleet.AddSession({}, /*weight=*/1, /*local=*/false, profile) ==
              FleetHost::Admission::kAdmitted);

  WebWorkload web(kScreenW, kScreenH, kSeed);
  std::deque<InputEventKind> kinds;
  int page = 0;
  int band = 0;
  fleet.SetInputCallback(0, [&](Point p) {
    THINC_CHECK(!kinds.empty());
    const InputEventKind kind = kinds.front();
    kinds.pop_front();
    WindowServer* ws = fleet.window_server(0);
    switch (kind) {
      case InputEventKind::kKeystroke:
        // One typed glyph at the caret.
        ws->FillRect(kScreenDrawable, Rect{p.x, p.y, 8, 16},
                     MakePixel(20, 20, 20));
        break;
      case InputEventKind::kScroll:
        // A flick shifts a content band into view.
        ws->FillRect(kScreenDrawable,
                     Rect{0, (band++ % 6) * (kScreenH / 6), kScreenW,
                          kScreenH / 6},
                     MakePixel(static_cast<uint8_t>(40 + 30 * (band % 5)),
                               120, 180));
        break;
      case InputEventKind::kTap:
        // A navigation tap loads the next page.
        web.RenderPage(ws, page++ % web.page_count(), fleet.host_cpu());
        break;
    }
  });

  InputTraceOptions to;
  to.cadence = profile.cadence;
  to.duration = duration;
  to.seed = kSeed;
  to.screen_width = profile.screen_width > 0 ? profile.screen_width : kScreenW;
  to.screen_height =
      profile.screen_height > 0 ? profile.screen_height : kScreenH;
  const std::vector<InputEvent> trace = GenerateInputTrace(to);
  ReplayInputTrace(&loop, trace, [&fleet, &kinds](const InputEvent& e) {
    kinds.push_back(e.kind);
    fleet.ClientClick(0, e.location);
  });
  loop.Run();

  ClassRun r;
  r.name = name;
  r.events = trace.size();
  r.bytes = fleet.transport(0)->BytesDeliveredTo(Transport::kClient);
  if (fleet.transport(0)->kind() == TransportKind::kLossy) {
    r.segments_lost =
        static_cast<LossyTransport*>(fleet.transport(0))->segments_lost();
  }
  r.decode_busy = fleet.session(0)->client_cpu->total_busy();
  r.view_w = fleet.client(0)->framebuffer().width();
  r.view_h = fleet.client(0)->framebuffer().height();
  std::vector<int64_t> lat;
  for (const UpdateSpan& s : telemetry.spans()) {
    if (s.completed()) {
      lat.push_back(s.damaged.ts - s.queued.ts);
    }
  }
  r.p50_ms = static_cast<double>(PercentileUs(lat, 0.50)) / kMillisecond;
  r.p95_ms = static_cast<double>(PercentileUs(lat, 0.95)) / kMillisecond;
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  return r;
}

std::vector<ClassRun> RunDeviceTable(SimTime duration) {
  return {
      RunDeviceClass("desktop", DesktopProfile(), duration),
      RunDeviceClass("phone", SmartphoneProfile(), duration),
      RunDeviceClass("terminal", PiTerminalProfile(), duration),
  };
}

std::string DeviceTableJson(const std::vector<ClassRun>& table,
                            SimTime duration) {
  std::string j;
  AppendF(&j, "  \"trace_duration_us\": %lld,\n  \"device_classes\": [\n",
          static_cast<long long>(duration));
  for (size_t i = 0; i < table.size(); ++i) {
    const ClassRun& r = table[i];
    AppendF(&j,
            "    {\"class\": \"%s\", \"events\": %zu, \"p50_ms\": %.3f, "
            "\"p95_ms\": %.3f, \"bytes\": %lld, \"segments_lost\": %lld, "
            "\"decode_busy_us\": %lld, \"viewport\": \"%dx%d\"}%s\n",
            r.name, r.events, r.p50_ms, r.p95_ms,
            static_cast<long long>(r.bytes),
            static_cast<long long>(r.segments_lost),
            static_cast<long long>(r.decode_busy), r.view_w, r.view_h,
            i + 1 < table.size() ? "," : "");
  }
  AppendF(&j, "  ]");
  return j;
}

// --- Mixed-vs-uniform capacity sweep -----------------------------------------

constexpr SimTime kThink = 1500 * kMillisecond;

DeviceProfile SweepProfile(int i, bool mixed) {
  if (!mixed) {
    return DesktopProfile();
  }
  switch (i % 3) {
    case 1:
      return BenchPhone();
    case 2:
      return PiTerminalProfile();
    default:
      return DesktopProfile();
  }
}

struct FleetRun {
  int n = 0;
  bool mixed = false;
  double pooled_p95_ms = 0;
  int64_t nic_bytes = 0;
  int64_t spans_completed = 0;
};

// Open-loop web fleet: every session clicks through `pages` pages at the
// same staggered cadence; only the population composition changes.
FleetRun RunPopulation(int n, bool mixed, int pages) {
  Telemetry& telemetry = Telemetry::Get();
  TelemetryConfig tcfg;
  tcfg.spans = true;
  telemetry.Configure(tcfg);
  telemetry.ResetRuntime();
  MetricsRegistry::Get().ResetAll();

  EventLoop loop;
  FleetOptions fo;
  fo.screen_width = kScreenW;
  fo.screen_height = kScreenH;
  fo.link = FleetNic();
  fo.cpu_speed = 16.0;
  fo.send_buffer_bytes = 32 << 10;
  fo.seed = kSeed;
  fo.degradation_enabled = false;  // raw capacity, not degraded capacity
  FleetHost fleet(&loop, fo);
  for (int i = 0; i < n; ++i) {
    THINC_CHECK(fleet.AddSession({}, /*weight=*/1, /*local=*/false,
                                 SweepProfile(i, mixed)) ==
                FleetHost::Admission::kAdmitted);
  }
  WebWorkload web(kScreenW, kScreenH, kSeed);
  std::vector<int> next_page(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const size_t id = static_cast<size_t>(i);
    fleet.SetInputCallback(id, [&fleet, &web, &next_page, id](Point) {
      const int32_t page = static_cast<int32_t>(
          (static_cast<int>(id) * 7 + next_page[id]) % web.page_count());
      ++next_page[id];
      web.RenderPage(fleet.window_server(id), page, fleet.host_cpu());
    });
  }
  const SimTime stagger = kThink / n;
  SimTime last_click = 0;
  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < pages; ++p) {
      const SimTime t = i * stagger + p * kThink;
      last_click = std::max(last_click, t);
      const size_t id = static_cast<size_t>(i);
      loop.ScheduleAt(t, [&fleet, &web, id, p] {
        fleet.ClientClick(id, web.LinkPosition(p % web.page_count()));
      });
    }
  }
  fleet.StartController(last_click + 5 * kSecond);
  loop.Run();

  FleetRun r;
  r.n = n;
  r.mixed = mixed;
  for (int i = 0; i < n; ++i) {
    r.nic_bytes += fleet.transport(static_cast<size_t>(i))
                       ->BytesDeliveredTo(Transport::kClient);
  }
  std::vector<int64_t> pooled;
  for (const UpdateSpan& s : telemetry.spans()) {
    if (s.completed()) {
      ++r.spans_completed;
      pooled.push_back(s.damaged.ts - s.queued.ts);
    }
  }
  r.pooled_p95_ms =
      static_cast<double>(PercentileUs(std::move(pooled), 0.95)) / kMillisecond;
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  return r;
}

std::vector<int> SweepSizes() {
  std::vector<int> sizes = {3, 6, 9, 12, 15};
  const char* env = std::getenv("THINC_FLEET_MAX_N");
  if (env != nullptr && std::atoi(env) > 0) {
    const int max_n = std::atoi(env);
    std::erase_if(sizes, [max_n](int s) { return s > max_n; });
  }
  return sizes;
}

int Knee(const std::vector<FleetRun>& runs, bool mixed) {
  int best = 0;
  for (const FleetRun& r : runs) {
    if (r.mixed == mixed && r.pooled_p95_ms <= kKneeMs) {
      best = std::max(best, r.n);
    }
  }
  return best;
}

// --- Smoke gate (scripts/check.sh) -------------------------------------------

int RunSmoke() {
  bench::PrintHeader("Device smoke: matrix determinism gate",
                     "(device-class table twice; JSON must be byte-identical)");
  // Long enough for the phone's Gilbert-Elliott chain to visit the bad state
  // and force a retransmission (the loss gate below); still well under a
  // second of wall clock.
  constexpr SimTime kSmokeDuration = 25 * kSecond;
  const std::vector<ClassRun> first = RunDeviceTable(kSmokeDuration);
  const std::vector<ClassRun> second = RunDeviceTable(kSmokeDuration);
  const std::string a = DeviceTableJson(first, kSmokeDuration);
  const std::string b = DeviceTableJson(second, kSmokeDuration);
  THINC_CHECK_MSG(a == b,
                  "device-class table changed between identical reruns; the "
                  "device tier's determinism contract is broken");
  const ClassRun& phone = first[1];
  THINC_CHECK_MSG(phone.view_w == SmartphoneProfile().screen_width &&
                      phone.view_h == SmartphoneProfile().screen_height,
                  "phone session did not negotiate its panel viewport");
  THINC_CHECK_MSG(phone.segments_lost > 0,
                  "phone session saw no loss — the lossy WAN path is not "
                  "engaged");
  std::printf("device table identical across reruns (%zu classes); phone at "
              "%dx%d with %lld retransmissions — matrix gate holds\n",
              first.size(), phone.view_w, phone.view_h,
              static_cast<long long>(phone.segments_lost));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke();
  }

  bench::PrintHeader(
      "Heterogeneous device matrix: per-class quality and mixed capacity",
      "(trace-driven class table; then uniform-vs-mixed population sweep)");

  // -- Device-class table --
  constexpr SimTime kTableDuration = 40 * kSecond;
  const std::vector<ClassRun> table = RunDeviceTable(kTableDuration);
  std::printf("\n-- One session per class, %lld s of its own input trace --\n",
              static_cast<long long>(kTableDuration / kSecond));
  std::printf("%-10s %8s %10s %10s %12s %10s %12s %10s\n", "class", "events",
              "p50_ms", "p95_ms", "KB", "lost", "decode_ms", "viewport");
  for (const ClassRun& r : table) {
    std::printf("%-10s %8zu %10.1f %10.1f %12.1f %10lld %12.1f %7dx%d\n",
                r.name, r.events, r.p50_ms, r.p95_ms,
                static_cast<double>(r.bytes) / 1024.0,
                static_cast<long long>(r.segments_lost),
                static_cast<double>(r.decode_busy) / kMillisecond, r.view_w,
                r.view_h);
  }
  THINC_CHECK_MSG(table[1].segments_lost > 0,
                  "phone class must run over the lossy path");
  THINC_CHECK_MSG(table[2].decode_busy > table[0].decode_busy,
                  "terminal's slower decode CPU must show in busy time");

  // -- Mixed-vs-uniform sweep --
  std::printf("\n-- Fleet on a %.0f Mbps NIC: uniform desktops vs "
              "desktop/phone/terminal mix --\n",
              static_cast<double>(FleetNic().bandwidth_bps) / 1'000'000);
  std::printf("%4s %9s %14s %14s %10s\n", "N", "mix", "pooled_p95_ms",
              "nic_bytes", "updates");
  const int pages = 3;
  std::vector<FleetRun> runs;
  for (int n : SweepSizes()) {
    for (bool mixed : {false, true}) {
      FleetRun r = RunPopulation(n, mixed, pages);
      std::printf("%4d %9s %14.1f %14lld %10lld\n", r.n,
                  r.mixed ? "mixed" : "uniform", r.pooled_p95_ms,
                  static_cast<long long>(r.nic_bytes),
                  static_cast<long long>(r.spans_completed));
      std::fflush(stdout);
      runs.push_back(r);
    }
  }
  const int knee_uniform = Knee(runs, /*mixed=*/false);
  const int knee_mixed = Knee(runs, /*mixed=*/true);
  std::printf("capacity knee (largest N with pooled p95 <= %.0f ms): "
              "uniform-desktop -> %d sessions, mixed -> %d sessions\n",
              kKneeMs, knee_uniform, knee_mixed);
  THINC_CHECK_MSG(knee_mixed >= knee_uniform,
                  "mixed population must hold the knee at or beyond the "
                  "uniform-desktop knee: phone viewports ship less");

  std::string json = "{\n";
  json += DeviceTableJson(table, kTableDuration);
  json += ",\n";
  AppendF(&json,
          "  \"fleet\": {\n    \"nic_bps\": %lld, \"pages_per_session\": %d, "
          "\"knee_uniform_desktop\": %d, \"knee_mixed\": %d,\n"
          "    \"sweep\": [\n",
          static_cast<long long>(FleetNic().bandwidth_bps), pages,
          knee_uniform, knee_mixed);
  for (size_t i = 0; i < runs.size(); ++i) {
    const FleetRun& r = runs[i];
    AppendF(&json,
            "      {\"n\": %d, \"mixed\": %s, \"p95_ms\": %.3f, "
            "\"nic_bytes\": %lld, \"updates_completed\": %lld}%s\n",
            r.n, r.mixed ? "true" : "false", r.pooled_p95_ms,
            static_cast<long long>(r.nic_bytes),
            static_cast<long long>(r.spans_completed),
            i + 1 < runs.size() ? "," : "");
  }
  json += "    ]\n  }\n}\n";
  std::FILE* f = std::fopen("BENCH_devices.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_devices.json\n");
  }
  std::printf(
      "\nExpected shape: the phone pays latency for its lossy WAN path but\n"
      "ships far fewer bytes through its quarter-area viewport; the terminal\n"
      "matches desktop bytes at roughly double the decode time; and the mixed\n"
      "population's capacity knee sits at or beyond the uniform-desktop knee.\n");
  return 0;
}
