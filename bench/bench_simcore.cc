// Simulator-core microbench: events/sec through the EventLoop's lazy-delete
// binary heap vs. the original std::map queue it replaced.
//
// The map implementation kept (when, id) keys in a balanced tree: a malloc
// and rebalance per event on the push/pop path, and Cancel() a LINEAR scan
// for the id. The heap pushes/pops on a flat vector and cancels by erasing
// the id from the live set (the dead entry is discarded when it surfaces,
// or at a compaction sweep). Two synthetic workloads bracket the
// simulator's behavior:
//
//   * churn: a fixed population of pending timers, pop one / push one.
//     This is the simulator's actual hot path (nothing in src/ cancels
//     today); the heap must not regress it.
//   * cancel-heavy: P timers pending, events are mostly cancelled and
//     rescheduled before they fire — the pattern of pacing timers and flush
//     coalescing. The map pays O(P) per cancel; the heap pays O(1)
//     amortized.
//
// Both queues run the SAME deterministic LCG-driven op sequence, and the
// fired (time, order) transcript is cross-checked for equality — the heap
// must reproduce the map's semantics exactly (monotonic ids make (when, id)
// order equal FIFO-at-same-time), not just go faster. A final section runs a
// real web fleet and reports end-to-end simulated events/sec.
//
// Emits BENCH_simcore.json. `--smoke` (scripts/check.sh) asserts transcript
// identity and that the heap clears >= 2x the map's events/sec on the
// cancel-heavy workload.
#include "bench/bench_common.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/util/logging.h"
#include "src/workload/web.h"

namespace thinc {
namespace {

// --- The pre-heap EventLoop queue, preserved as the baseline -----------------
//
// Same external semantics as EventLoop (clamped past schedules, monotonic
// ids, FIFO at equal times); Cancel() is the historical linear scan.
class MapEventQueue {
 public:
  using EventId = uint64_t;

  SimTime now() const { return now_; }

  EventId ScheduleAt(SimTime when, std::function<void()> fn) {
    if (when < now_) {
      when = now_;
    }
    const EventId id = next_id_++;
    queue_.emplace(std::make_pair(when, id), std::move(fn));
    return id;
  }

  bool Cancel(EventId id) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->first.second == id) {
        queue_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool Step() {
    if (queue_.empty()) {
      return false;
    }
    auto it = queue_.begin();
    now_ = it->first.first;
    std::function<void()> fn = std::move(it->second);
    queue_.erase(it);
    fn();
    return true;
  }

  size_t pending_count() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::map<std::pair<SimTime, EventId>, std::function<void()>> queue_;
};

// --- Deterministic workloads -------------------------------------------------

struct WorkloadResult {
  std::vector<SimTime> transcript;  // fired times, in firing order
  uint64_t ops = 0;                 // schedules + cancels + fires
  double wall_ms = 0;
  double events_per_sec = 0;
};

uint64_t LcgNext(uint64_t& rng) {
  rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
  return rng >> 33;
}

double WallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Pop one / push one over a steady population of `pending` timers.
template <typename Queue>
WorkloadResult RunChurn(int pending, int fires) {
  Queue q;
  uint64_t rng = 0x5eed5eedULL;
  WorkloadResult r;
  r.transcript.reserve(static_cast<size_t>(fires));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < pending; ++i) {
    q.ScheduleAt(static_cast<SimTime>(LcgNext(rng) % 100000),
                 [&r, &q] { r.transcript.push_back(q.now()); });
    ++r.ops;
  }
  for (int i = 0; i < fires; ++i) {
    THINC_CHECK(q.Step());
    ++r.ops;
    q.ScheduleAt(q.now() + 1 + static_cast<SimTime>(LcgNext(rng) % 100000),
                 [&r, &q] { r.transcript.push_back(q.now()); });
    ++r.ops;
  }
  r.wall_ms = WallMs(t0);
  r.events_per_sec = static_cast<double>(r.ops) / (r.wall_ms / 1000.0);
  return r;
}

// The fleet pattern: `pending` timers live at once, and most ops cancel a
// random live timer and reschedule it (a NIC pacing reset / flush-coalesce
// extension); every 8th op pops instead, so time advances and some events
// genuinely fire.
template <typename Queue>
WorkloadResult RunCancelHeavy(int pending, int ops) {
  Queue q;
  uint64_t rng = 0xcafef00dULL;
  WorkloadResult r;
  std::vector<typename Queue::EventId> live;
  live.reserve(static_cast<size_t>(pending));
  auto schedule = [&] {
    live.push_back(q.ScheduleAt(
        q.now() + 1 + static_cast<SimTime>(LcgNext(rng) % 100000),
        [&r, &q] { r.transcript.push_back(q.now()); }));
    ++r.ops;
  };
  for (int i = 0; i < pending; ++i) {
    schedule();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    if (i % 8 == 7) {
      THINC_CHECK(q.Step());
      ++r.ops;
      schedule();  // keep the population steady
      continue;
    }
    const size_t victim = LcgNext(rng) % live.size();
    // A fired timer's id may linger in `live`; a failed Cancel is the
    // deterministic signal to drop it. Both queues agree on the outcome.
    if (q.Cancel(live[victim])) {
      ++r.ops;
    }
    live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    schedule();
  }
  r.wall_ms = WallMs(t0);
  r.events_per_sec = static_cast<double>(r.ops) / (r.wall_ms / 1000.0);
  return r;
}

// --- End-to-end fleet sweep rate ---------------------------------------------

struct FleetRate {
  int n = 0;
  uint64_t fired = 0;
  uint64_t cancelled = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
};

FleetRate RunFleetSweep(int n, int pages) {
  const auto t0 = std::chrono::steady_clock::now();
  EventLoop loop;
  FleetOptions fo;
  fo.screen_width = 512;
  fo.screen_height = 384;
  fo.link = LinkParams{1'000'000, 20 * kMillisecond, 256 << 10, "web"};
  fo.cpu_speed = 16.0;
  fo.send_buffer_bytes = 32 << 10;
  fo.seed = 11;
  FleetHost fleet(&loop, fo);
  WebWorkload web(512, 384, /*seed=*/11);
  for (int i = 0; i < n; ++i) {
    THINC_CHECK(fleet.AddSession({}) == FleetHost::Admission::kAdmitted);
  }
  for (int i = 0; i < n; ++i) {
    const size_t id = static_cast<size_t>(i);
    fleet.SetInputCallback(id, [&fleet, &web, id](Point) {
      web.RenderPage(fleet.window_server(id),
                     static_cast<int32_t>(id) % web.page_count(),
                     fleet.host_cpu());
    });
  }
  SimTime last_click = 0;
  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < pages; ++p) {
      const SimTime t = i * (kSecond / n) + p * kSecond;
      last_click = std::max(last_click, t);
      const size_t id = static_cast<size_t>(i);
      loop.ScheduleAt(t, [&fleet, &web, id, p] {
        fleet.ClientClick(id, web.LinkPosition(p % web.page_count()));
      });
    }
  }
  fleet.StartController(last_click + 5 * kSecond);
  loop.Run();
  FleetRate r;
  r.n = n;
  r.fired = loop.fired_count();
  r.cancelled = loop.cancelled_count();
  r.wall_ms = WallMs(t0);
  r.events_per_sec = static_cast<double>(r.fired) / (r.wall_ms / 1000.0);
  return r;
}

// --- Driver ------------------------------------------------------------------

struct Comparison {
  const char* workload;
  int pending;
  WorkloadResult map;
  WorkloadResult heap;
  double speedup = 0;
};

Comparison Compare(const char* workload, int pending, int ops) {
  Comparison c;
  c.workload = workload;
  c.pending = pending;
  if (std::strcmp(workload, "churn") == 0) {
    c.map = RunChurn<MapEventQueue>(pending, ops);
    c.heap = RunChurn<EventLoop>(pending, ops);
  } else {
    c.map = RunCancelHeavy<MapEventQueue>(pending, ops);
    c.heap = RunCancelHeavy<EventLoop>(pending, ops);
  }
  THINC_CHECK_MSG(c.map.transcript == c.heap.transcript,
                  "heap and map queues fired different transcripts");
  THINC_CHECK_MSG(c.map.ops == c.heap.ops,
                  "heap and map queues disagreed on op outcomes");
  c.speedup = c.heap.events_per_sec / c.map.events_per_sec;
  return c;
}

void PrintComparison(const Comparison& c) {
  std::printf("%-12s %8d %10llu %14.0f %14.0f %8.1fx\n", c.workload, c.pending,
              static_cast<unsigned long long>(c.heap.ops),
              c.map.events_per_sec, c.heap.events_per_sec, c.speedup);
  std::fflush(stdout);
}

int RunSmoke() {
  bench::PrintHeader("Simcore smoke: heap vs map identity + cancel speedup",
                     "(identical transcripts required; >= 2x on cancel-heavy)");
  Comparison churn = Compare("churn", 1024, 50000);
  Comparison cancel = Compare("cancel-heavy", 4096, 50000);
  std::printf("churn:        %zu fired, identical transcripts, %.1fx\n",
              churn.heap.transcript.size(), churn.speedup);
  std::printf("cancel-heavy: %zu fired, identical transcripts, %.1fx\n",
              cancel.heap.transcript.size(), cancel.speedup);
  THINC_CHECK_MSG(cancel.speedup >= 2.0,
                  "heap below 2x map events/sec on cancel-heavy workload");
  std::printf("OK\n");
  return 0;
}

}  // namespace
}  // namespace thinc

int main(int argc, char** argv) {
  using namespace thinc;
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke();
  }

  bench::PrintHeader("Simulator core: events/sec, lazy-delete heap vs std::map",
                     "(same deterministic op sequence on both queues)");
  std::printf("%-12s %8s %10s %14s %14s %9s\n", "workload", "pending", "ops",
              "map_ev/s", "heap_ev/s", "speedup");
  std::vector<Comparison> comparisons;
  for (int pending : {256, 1024, 4096}) {
    Comparison c = Compare("churn", pending, 100000);
    PrintComparison(c);
    comparisons.push_back(std::move(c));
  }
  for (int pending : {256, 1024, 4096}) {
    Comparison c = Compare("cancel-heavy", pending, 100000);
    PrintComparison(c);
    comparisons.push_back(std::move(c));
  }

  std::printf("\n-- Fleet sweep rate (end-to-end simulated events/sec) --\n");
  std::printf("%4s %12s %12s %10s %14s\n", "N", "fired", "cancelled",
              "wall_ms", "events/s");
  // Hundreds-scale by default; THINC_SIMCORE_MAX_N trims the tail on
  // constrained CI runners.
  std::vector<int> fleet_sizes = {4, 16, 64, 256};
  if (const char* env = std::getenv("THINC_SIMCORE_MAX_N");
      env != nullptr && std::atoi(env) > 0) {
    const int max_n = std::atoi(env);
    std::erase_if(fleet_sizes, [max_n](int n) { return n > max_n; });
  }
  std::vector<FleetRate> rates;
  for (int n : fleet_sizes) {
    FleetRate r = RunFleetSweep(n, /*pages=*/3);
    std::printf("%4d %12llu %12llu %10.1f %14.0f\n", r.n,
                static_cast<unsigned long long>(r.fired),
                static_cast<unsigned long long>(r.cancelled), r.wall_ms,
                r.events_per_sec);
    rates.push_back(r);
  }

  std::FILE* f = std::fopen("BENCH_simcore.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"queue\": {\n    \"sweep\": [\n");
    for (size_t i = 0; i < comparisons.size(); ++i) {
      const Comparison& c = comparisons[i];
      std::fprintf(f,
                   "      {\"workload\": \"%s\", \"pending\": %d, \"ops\": "
                   "%llu, \"map_events_per_sec\": %.0f, "
                   "\"heap_events_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
                   c.workload, c.pending,
                   static_cast<unsigned long long>(c.heap.ops),
                   c.map.events_per_sec, c.heap.events_per_sec, c.speedup,
                   i + 1 < comparisons.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n  \"fleet\": {\n    \"sweep\": [\n");
    for (size_t i = 0; i < rates.size(); ++i) {
      const FleetRate& r = rates[i];
      std::fprintf(f,
                   "      {\"n\": %d, \"fired\": %llu, \"cancelled\": %llu, "
                   "\"wall_ms\": %.1f, \"events_per_sec\": %.0f}%s\n",
                   r.n, static_cast<unsigned long long>(r.fired),
                   static_cast<unsigned long long>(r.cancelled), r.wall_ms,
                   r.events_per_sec, i + 1 < rates.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_simcore.json\n");
  }
  std::printf(
      "\nExpected shape: churn speedup near or above 1x (flat-vector sifts\n"
      "vs a malloc and rebalance per event); cancel-heavy speedup grows with\n"
      "the pending count as the map's O(n) Cancel scan dominates.\n");
  return 0;
}
