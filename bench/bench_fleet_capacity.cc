// Fleet capacity: sessions-per-host sweep on a shared-CPU / shared-NIC
// multi-tenant THINC host (src/fleet).
//
// The paper's scaling claim — one server "can maintain a large number of
// active thin clients" (Section 2) — is a capacity statement, so this bench
// measures the capacity knee directly: N sessions share one host NIC and
// one host CPU, each session loads web pages on an open-loop schedule
// (clicks fire on time whether or not the previous page finished, so
// overload shows up as queueing rather than as a slower click rate), and we
// report per-session p95 update latency and delivery quality as N sweeps
// over {1, 4, 16, 64}, with the overload-degradation ladder off and on.
//
// Expected shape: below the knee the ladder is inert and both runs match;
// beyond the knee the ladder-off fleet's p95 balloons super-linearly with
// offered load while the ladder-on fleet sheds fidelity (flush stretch,
// tighter backlog cap, video decimation) and keeps the latency growth
// sub-linear. The admission controller's predicted capacity (from measured
// N=1 demand) is printed next to the measured knee.
//
// Latency comes from telemetry lifecycle spans grouped by each session
// server's Chrome-trace pid — one pid per session — which is also the
// structural check that fleet telemetry attribution works. Emits
// BENCH_fleet.json (byte-identical across runs: everything is virtual-time
// deterministic) and TRACE_fleet.json (N=4 web run, Perfetto-loadable).
//
// `--smoke` runs the scripts/check.sh gate instead: an 8-session fleet run
// twice, telemetry fully off vs fully on, THINC_CHECKing that wire bytes
// and virtual time are identical (telemetry must never perturb results).
#include "bench/bench_common.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"
#include "src/workload/video.h"
#include "src/workload/web.h"

using namespace thinc;

namespace {

// Per-session screens are small (a fleet host serves many modest desktops;
// also keeps the N=64 point affordable).
constexpr int32_t kScreenW = 512;
constexpr int32_t kScreenH = 384;
constexpr uint64_t kFleetSeed = 11;
constexpr SimTime kThink = 1500 * kMillisecond;  // open-loop click period

// Host NICs sized so the knee lands inside the sweep: web pages at this
// geometry offer ~0.13 Mbps/session, video ~1.2 Mbps/session.
LinkParams WebNic() {
  return LinkParams{1'000'000, 20 * kMillisecond, 256 << 10, "fleet-nic"};
}
LinkParams VideoNic() {
  return LinkParams{10'000'000, 20 * kMillisecond, 256 << 10, "fleet-nic"};
}

// The web host is CPU-provisioned like a real multi-tenant server (browser
// layout is cheap relative to the shared downlink), so past the knee the
// binding resource is the NIC -- the one the degradation ladder can shed.
constexpr double kWebCpuSpeed = 16.0;

// The CPU-bound sweep inverts the provisioning: a 100 Mbps NIC that never
// binds and a deliberately slow host CPU, so the knee is set by render +
// encode cycles and adding cores (FleetOptions::cpu_cores) moves it.
constexpr double kCpuBoundSpeed = 0.25;
LinkParams CpuBoundNic() {
  return LinkParams{100'000'000, 20 * kMillisecond, 256 << 10, "fleet-nic"};
}
// A run counts as below the knee while pooled p95 stays under this; with
// open-loop clicks, oversubscribed runs queue without bound and blow past
// it by seconds.
constexpr double kCpuKneeMs = 1000.0;

int PagesPerSession() {
  const char* env = std::getenv("THINC_FLEET_PAGES");
  if (env != nullptr && std::atoi(env) > 0) {
    return std::atoi(env);
  }
  return 6;
}

std::vector<int> CapSizes(std::vector<int> sizes) {
  const char* env = std::getenv("THINC_FLEET_MAX_N");
  if (env != nullptr && std::atoi(env) > 0) {
    const int max_n = std::atoi(env);
    std::erase_if(sizes, [max_n](int n) { return n > max_n; });
  }
  return sizes;
}

std::vector<int> SweepSizes() { return CapSizes({1, 4, 16, 64}); }
// Bracketing the expected K=1 (~6) and K=2 (~11) CPU knees.
std::vector<int> CpuSweepSizes() { return CapSizes({1, 2, 4, 6, 8, 12}); }

// Nearest-rank percentile over integer microseconds (deterministic; no FP
// accumulation order dependence).
int64_t PercentileUs(std::vector<int64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

double Ms(int64_t us) { return static_cast<double>(us) / kMillisecond; }

// --- Web sweep ---------------------------------------------------------------

struct WebRun {
  int n = 0;
  int cores = 1;
  bool ladder = false;
  SimTime end_vtime = 0;
  SimTime host_cpu_busy = 0;       // host-local microseconds
  int64_t wire_bytes = 0;          // all sessions, server->client
  std::vector<int64_t> session_bytes;
  // Lifecycle-span latency (queued -> client framebuffer damage).
  double pooled_p95_ms = 0;
  double median_session_p95_ms = 0;
  double worst_session_p95_ms = 0;
  int64_t spans_total = 0;
  int64_t spans_completed = 0;
  int64_t spans_evicted = 0;  // overwritten in the backlog before sending
  int max_degrade_level = 0;
  int64_t degradations = 0;
};

WebRun RunWebFleet(int n, bool ladder, const TelemetryConfig& tcfg,
                   int pages_per_session, const char* trace_path = nullptr,
                   int cpu_cores = 1, double cpu_speed = kWebCpuSpeed,
                   LinkParams nic = WebNic()) {
  Telemetry& telemetry = Telemetry::Get();
  telemetry.Configure(tcfg);
  telemetry.ResetRuntime();
  MetricsRegistry::Get().ResetAll();

  EventLoop loop;
  FleetOptions fo;
  fo.screen_width = kScreenW;
  fo.screen_height = kScreenH;
  fo.link = nic;
  fo.cpu_speed = cpu_speed;
  fo.cpu_cores = cpu_cores;
  // Sockets sized for the shared link, not the 256 KiB desktop default:
  // bytes committed to a socket are un-sheddable, so a fleet host keeps
  // them within a couple of seconds of a fair per-session drain share.
  fo.send_buffer_bytes = 32 << 10;
  fo.seed = kFleetSeed;
  fo.degradation_enabled = ladder;
  // Sub-knee click pileups park up to a few pages of backlog (~0.8 s of
  // wire); only genuine oversubscription grows past a second. Sample fast
  // so the ladder engages before too much full-fidelity traffic commits.
  fo.control_interval = 50 * kMillisecond;
  fo.overload_lag = 1 * kSecond;
  // The sweep deliberately over-admits (zero declared demand) so overload is
  // reachable; the admission math is reported separately via
  // PredictedCapacity on the measured N=1 demand.
  FleetHost fleet(&loop, fo);
  WebWorkload web(kScreenW, kScreenH, kFleetSeed);
  std::vector<int> next_page(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    THINC_CHECK(fleet.AddSession({}) == FleetHost::Admission::kAdmitted);
  }
  for (int i = 0; i < n; ++i) {
    const size_t id = static_cast<size_t>(i);
    fleet.SetInputCallback(id, [&fleet, &web, &next_page, id](Point) {
      // Each session walks its own offset into the page suite.
      const int32_t page = static_cast<int32_t>(
          (static_cast<int>(id) * 7 + next_page[id]) % web.page_count());
      ++next_page[id];
      web.RenderPage(fleet.window_server(id), page, fleet.host_cpu());
    });
  }
  // Open-loop arrivals: session i clicks at i*stagger + p*think, on schedule
  // regardless of whether the previous page has finished delivering.
  const SimTime stagger = kThink / n;
  SimTime last_click = 0;
  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < pages_per_session; ++p) {
      const SimTime t = i * stagger + p * kThink;
      last_click = std::max(last_click, t);
      const size_t id = static_cast<size_t>(i);
      loop.ScheduleAt(t, [&fleet, &web, id, p] {
        fleet.ClientClick(id, web.LinkPosition(p % web.page_count()));
      });
    }
  }
  fleet.StartController(last_click + 5 * kSecond);
  loop.Run();

  WebRun r;
  r.n = n;
  r.cores = cpu_cores;
  r.ladder = ladder;
  r.end_vtime = loop.now();
  r.host_cpu_busy = fleet.host_cpu()->total_busy();
  std::map<int, size_t> pid_to_session;
  for (int i = 0; i < n; ++i) {
    const size_t id = static_cast<size_t>(i);
    const int64_t bytes =
        fleet.connection(id)->BytesDeliveredTo(Connection::kClient);
    r.session_bytes.push_back(bytes);
    r.wire_bytes += bytes;
    pid_to_session[fleet.server(id)->telemetry_pid()] = id;
    r.max_degrade_level =
        std::max(r.max_degrade_level, fleet.degradation_level(id));
  }
  if (tcfg.spans) {
    std::vector<std::vector<int64_t>> per_session(static_cast<size_t>(n));
    std::vector<int64_t> pooled;
    for (const UpdateSpan& s : telemetry.spans()) {
      ++r.spans_total;
      if (s.evicted) {
        ++r.spans_evicted;
      }
      if (!s.completed()) {
        continue;
      }
      ++r.spans_completed;
      const int64_t latency = s.damaged.ts - s.queued.ts;
      pooled.push_back(latency);
      auto it = pid_to_session.find(s.server_pid);
      if (it != pid_to_session.end()) {
        per_session[it->second].push_back(latency);
      }
    }
    std::vector<int64_t> p95s;
    for (auto& v : per_session) {
      p95s.push_back(PercentileUs(std::move(v), 0.95));
    }
    r.pooled_p95_ms = Ms(PercentileUs(std::move(pooled), 0.95));
    r.median_session_p95_ms = Ms(PercentileUs(p95s, 0.50));
    r.worst_session_p95_ms = Ms(PercentileUs(p95s, 1.0));
  }
  r.max_degrade_level = std::max<int>(
      r.max_degrade_level,
      static_cast<int>(
          MetricsRegistry::Get().GetGauge("fleet.degrade_level")->max()));
  r.degradations =
      MetricsRegistry::Get().GetCounter("fleet.degradations")->value();
  if (trace_path != nullptr && tcfg.chrome_trace) {
    if (telemetry.WriteChromeTrace(trace_path)) {
      std::printf("wrote %s (one pid per session; load in Perfetto)\n",
                  trace_path);
    }
  }
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  return r;
}

// --- Video sweep -------------------------------------------------------------

struct VideoRun {
  int n = 0;
  bool ladder = false;
  SimTime end_vtime = 0;
  int64_t wire_bytes = 0;
  int32_t frames_emitted = 0;    // all sessions
  int32_t frames_delivered = 0;  // arrived at clients
  int64_t frames_decimated = 0;  // shed by the ladder
  double delivered_fraction = 0;
  double median_session_p95_ms = 0;  // frame delay, server ts -> client arrival
  double worst_session_p95_ms = 0;
  int max_degrade_level = 0;
};

VideoRun RunVideoFleet(int n, bool ladder) {
  Telemetry& telemetry = Telemetry::Get();
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  MetricsRegistry::Get().ResetAll();

  EventLoop loop;
  FleetOptions fo;
  fo.screen_width = kScreenW;
  fo.screen_height = kScreenH;
  fo.link = VideoNic();
  fo.seed = kFleetSeed;
  fo.degradation_enabled = ladder;
  // Video pressure builds within a clip, not across minutes: degrade on the
  // first hot tick so a 3-second clip can show the ladder. Frame bursts are
  // tens of milliseconds deep, so a 100 ms lag already means oversubscribed.
  fo.ticks_to_degrade = 1;
  fo.overload_lag = 100 * kMillisecond;
  FleetHost fleet(&loop, fo);
  for (int i = 0; i < n; ++i) {
    THINC_CHECK(fleet.AddSession({}) == FleetHost::Admission::kAdmitted);
  }
  VideoSourceOptions vo;
  vo.width = 176;
  vo.height = 144;
  vo.fps = 12.0;
  vo.duration = 3 * kSecond;
  vo.dst = Rect{0, 0, 176, 144};
  std::vector<std::unique_ptr<VideoSource>> sources;
  for (int i = 0; i < n; ++i) {
    const size_t id = static_cast<size_t>(i);
    sources.push_back(std::make_unique<VideoSource>(
        &loop, fleet.window_server(id), fleet.host_cpu(), vo));
  }
  // Stagger starts within one frame interval so sessions are out of phase
  // (in-phase frame bursts would synchronize the NIC queue artificially).
  const SimTime frame_interval = sources[0]->frame_interval();
  for (int i = 0; i < n; ++i) {
    VideoSource* src = sources[static_cast<size_t>(i)].get();
    loop.ScheduleAt(i * frame_interval / n, [src] { src->Start(); });
  }
  fleet.StartController(vo.duration + 2 * kSecond);
  loop.Run();

  VideoRun r;
  r.n = n;
  r.ladder = ladder;
  r.end_vtime = loop.now();
  std::vector<int64_t> p95s;
  for (int i = 0; i < n; ++i) {
    const size_t id = static_cast<size_t>(i);
    r.wire_bytes += fleet.connection(id)->BytesDeliveredTo(Connection::kClient);
    r.frames_emitted += sources[id]->frames_emitted();
    r.frames_decimated += fleet.server(id)->video_frames_decimated();
    std::vector<int64_t> delays;
    for (const VideoFrameArrival& f : fleet.client(id)->video_frames()) {
      delays.push_back(f.time - f.server_timestamp);
    }
    r.frames_delivered += static_cast<int32_t>(delays.size());
    p95s.push_back(PercentileUs(std::move(delays), 0.95));
    r.max_degrade_level =
        std::max(r.max_degrade_level, fleet.degradation_level(id));
  }
  r.delivered_fraction =
      r.frames_emitted > 0
          ? static_cast<double>(r.frames_delivered) / r.frames_emitted
          : 0.0;
  r.median_session_p95_ms = Ms(PercentileUs(p95s, 0.50));
  r.worst_session_p95_ms = Ms(PercentileUs(p95s, 1.0));
  r.max_degrade_level = std::max<int>(
      r.max_degrade_level,
      static_cast<int>(
          MetricsRegistry::Get().GetGauge("fleet.degrade_level")->max()));
  return r;
}

// --- Output ------------------------------------------------------------------

void PrintWebRow(const WebRun& r) {
  std::printf("%4d %7s %14.1f %16.1f %16.1f %10lld %9lld %6d\n", r.n,
              r.ladder ? "on" : "off", r.pooled_p95_ms, r.median_session_p95_ms,
              r.worst_session_p95_ms, static_cast<long long>(r.spans_completed),
              static_cast<long long>(r.spans_evicted), r.max_degrade_level);
  std::fflush(stdout);
}

void PrintVideoRow(const VideoRun& r) {
  std::printf("%4d %7s %16.1f %16.1f %11.3f %10d %10lld %6d\n", r.n,
              r.ladder ? "on" : "off", r.median_session_p95_ms,
              r.worst_session_p95_ms, r.delivered_fraction, r.frames_delivered,
              static_cast<long long>(r.frames_decimated), r.max_degrade_level);
  std::fflush(stdout);
}

void WriteWebRunJson(std::FILE* f, const WebRun& r) {
  std::fprintf(f,
               "      {\"n\": %d, \"cores\": %d, \"ladder\": %s, \"p95_ms\": %.3f, "
               "\"median_session_p95_ms\": %.3f, \"worst_session_p95_ms\": "
               "%.3f, \"updates_completed\": %lld, \"updates_evicted\": %lld, "
               "\"wire_bytes\": %lld, \"end_vtime_us\": %lld, "
               "\"host_cpu_busy_us\": %lld, \"max_degrade_level\": %d, "
               "\"degradations\": %lld}",
               r.n, r.cores, r.ladder ? "true" : "false", r.pooled_p95_ms,
               r.median_session_p95_ms, r.worst_session_p95_ms,
               static_cast<long long>(r.spans_completed),
               static_cast<long long>(r.spans_evicted),
               static_cast<long long>(r.wire_bytes),
               static_cast<long long>(r.end_vtime),
               static_cast<long long>(r.host_cpu_busy), r.max_degrade_level,
               static_cast<long long>(r.degradations));
}

void WriteVideoRunJson(std::FILE* f, const VideoRun& r) {
  std::fprintf(f,
               "      {\"n\": %d, \"ladder\": %s, \"median_session_p95_ms\": "
               "%.3f, \"worst_session_p95_ms\": %.3f, \"delivered_fraction\": "
               "%.4f, \"frames_emitted\": %d, \"frames_delivered\": %d, "
               "\"frames_decimated\": %lld, \"wire_bytes\": %lld, "
               "\"max_degrade_level\": %d}",
               r.n, r.ladder ? "true" : "false", r.median_session_p95_ms,
               r.worst_session_p95_ms, r.delivered_fraction, r.frames_emitted,
               r.frames_delivered, static_cast<long long>(r.frames_decimated),
               static_cast<long long>(r.wire_bytes), r.max_degrade_level);
}

// --- Smoke gate (scripts/check.sh) -------------------------------------------

int RunSmoke() {
  bench::PrintHeader("Fleet smoke: telemetry on/off result identity",
                     "(8 sessions, 2 pages each; wire bytes and vtime must match)");
  TelemetryConfig off;
  TelemetryConfig on;
  on.spans = true;
  on.chrome_trace = true;
  on.flight_recorder = true;
  WebRun a = RunWebFleet(8, /*ladder=*/true, off, /*pages_per_session=*/2);
  WebRun b = RunWebFleet(8, /*ladder=*/true, on, /*pages_per_session=*/2);
  THINC_CHECK_MSG(a.end_vtime == b.end_vtime,
                  "telemetry changed fleet virtual time");
  THINC_CHECK_MSG(a.session_bytes == b.session_bytes,
                  "telemetry changed fleet wire bytes");
  std::printf("8-session fleet: %lld wire bytes, vtime %.3f s — identical "
              "with telemetry off and fully on\n",
              static_cast<long long>(a.wire_bytes),
              static_cast<double>(a.end_vtime) / kSecond);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke();
  }
  const int pages = PagesPerSession();
  const std::vector<int> sizes = SweepSizes();

  bench::PrintHeader(
      "Fleet capacity: sessions per host, shared CPU + shared NIC",
      "(open-loop web clicks + video clips; degradation ladder off vs on)");
  std::printf("per-session screen %dx%d, %d pages/session, think %.1f s, "
              "web NIC %lld Mbps, video NIC %lld Mbps\n",
              kScreenW, kScreenH, pages,
              static_cast<double>(kThink) / kSecond,
              static_cast<long long>(WebNic().bandwidth_bps / 1'000'000),
              static_cast<long long>(VideoNic().bandwidth_bps / 1'000'000));

  // Measured N=1 demand feeds the admission controller's capacity
  // prediction, reported next to the measured knee.
  TelemetryConfig spans_only;
  spans_only.spans = true;
  WebRun ref = RunWebFleet(1, /*ladder=*/true, spans_only, pages);
  FleetSessionDemand demand;
  const double ref_secs = static_cast<double>(ref.end_vtime) / kSecond;
  demand.cpu_us_per_sec = ref_secs > 0
                              ? static_cast<double>(ref.host_cpu_busy) *
                                    kWebCpuSpeed / ref_secs
                              : 0;
  demand.nic_bytes_per_sec =
      ref_secs > 0 ? static_cast<int64_t>(
                         static_cast<double>(ref.wire_bytes) / ref_secs)
                   : 0;
  int predicted = 0;
  {
    EventLoop loop;
    FleetOptions fo;
    fo.link = WebNic();
    fo.cpu_speed = kWebCpuSpeed;
    FleetHost probe(&loop, fo);
    predicted = probe.PredictedCapacity(demand);
  }
  std::printf("\nmeasured N=1 demand: %.0f ref-cpu-us/s, %lld NIC B/s  ->  "
              "admission-predicted capacity: %d sessions\n",
              demand.cpu_us_per_sec,
              static_cast<long long>(demand.nic_bytes_per_sec), predicted);

  std::printf("\n-- Web (update latency: scheduler insert -> client damage) --\n");
  std::printf("%4s %7s %14s %16s %16s %10s %9s %6s\n", "N", "ladder",
              "pooled_p95_ms", "median_sess_p95", "worst_sess_p95", "updates",
              "evicted", "level");
  std::vector<WebRun> web_runs;
  for (int n : sizes) {
    for (bool ladder : {false, true}) {
      const bool trace = ladder && n == 4;
      TelemetryConfig cfg = spans_only;
      cfg.chrome_trace = trace;
      WebRun r = RunWebFleet(n, ladder, cfg, pages,
                             trace ? "TRACE_fleet.json" : nullptr);
      PrintWebRow(r);
      web_runs.push_back(std::move(r));
    }
  }

  // CPU-bound sweep: same open-loop web clicks, but the NIC never binds and
  // the host CPU does — the knee is render+encode cycles, so modeling K=2
  // cores (parallel encode slices + a second lane for independent sessions)
  // must move it outward. Ladder off: this measures raw capacity, not
  // degraded capacity.
  std::printf("\n-- CPU-bound web (%.0f Mbps NIC, %.2fx host CPU, K cores) --\n",
              static_cast<double>(CpuBoundNic().bandwidth_bps) / 1'000'000,
              kCpuBoundSpeed);
  std::printf("%4s %5s %14s %16s %16s %10s\n", "N", "cores", "pooled_p95_ms",
              "median_sess_p95", "worst_sess_p95", "updates");
  std::vector<WebRun> cpu_runs;
  for (int cores : {1, 2}) {
    for (int n : CpuSweepSizes()) {
      WebRun r = RunWebFleet(n, /*ladder=*/false, spans_only, pages,
                             /*trace_path=*/nullptr, cores, kCpuBoundSpeed,
                             CpuBoundNic());
      std::printf("%4d %5d %14.1f %16.1f %16.1f %10lld\n", r.n, r.cores,
                  r.pooled_p95_ms, r.median_session_p95_ms,
                  r.worst_session_p95_ms,
                  static_cast<long long>(r.spans_completed));
      std::fflush(stdout);
      cpu_runs.push_back(std::move(r));
    }
  }
  auto cpu_knee = [&cpu_runs](int cores) {
    int best = 0;
    for (const WebRun& r : cpu_runs) {
      if (r.cores == cores && r.pooled_p95_ms <= kCpuKneeMs) {
        best = std::max(best, r.n);
      }
    }
    return best;
  };
  const int knee_k1 = cpu_knee(1);
  const int knee_k2 = cpu_knee(2);
  std::printf("CPU-bound knee (largest N with p95 <= %.0f ms): "
              "K=1 -> %d sessions, K=2 -> %d sessions\n",
              kCpuKneeMs, knee_k1, knee_k2);

  std::printf("\n-- Video (frame delay: server timestamp -> client arrival) --\n");
  std::printf("%4s %7s %16s %16s %11s %10s %10s %6s\n", "N", "ladder",
              "median_sess_p95", "worst_sess_p95", "delivered", "frames",
              "decimated", "level");
  std::vector<VideoRun> video_runs;
  for (int n : sizes) {
    for (bool ladder : {false, true}) {
      VideoRun r = RunVideoFleet(n, ladder);
      PrintVideoRow(r);
      video_runs.push_back(std::move(r));
    }
  }

  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"config\": {\"screen\": [%d, %d], "
                 "\"pages_per_session\": %d, \"think_ms\": %lld, "
                 "\"web_nic_bps\": %lld, \"video_nic_bps\": %lld},\n",
                 kScreenW, kScreenH, pages,
                 static_cast<long long>(kThink / kMillisecond),
                 static_cast<long long>(WebNic().bandwidth_bps),
                 static_cast<long long>(VideoNic().bandwidth_bps));
    std::fprintf(f,
                 "  \"demand\": {\"cpu_us_per_sec\": %.1f, "
                 "\"nic_bytes_per_sec\": %lld},\n"
                 "  \"predicted_capacity\": %d,\n",
                 demand.cpu_us_per_sec,
                 static_cast<long long>(demand.nic_bytes_per_sec), predicted);
    std::fprintf(f, "  \"web\": {\n    \"sweep\": [\n");
    for (size_t i = 0; i < web_runs.size(); ++i) {
      WriteWebRunJson(f, web_runs[i]);
      std::fprintf(f, i + 1 < web_runs.size() ? ",\n" : "\n");
    }
    std::fprintf(f,
                 "    ]\n  },\n  \"cpu_bound\": {\n    \"cpu_speed\": %.2f, "
                 "\"nic_bps\": %lld, \"knee_k1\": %d, \"knee_k2\": %d,\n"
                 "    \"sweep\": [\n",
                 kCpuBoundSpeed,
                 static_cast<long long>(CpuBoundNic().bandwidth_bps), knee_k1,
                 knee_k2);
    for (size_t i = 0; i < cpu_runs.size(); ++i) {
      WriteWebRunJson(f, cpu_runs[i]);
      std::fprintf(f, i + 1 < cpu_runs.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "    ]\n  },\n  \"video\": {\n    \"sweep\": [\n");
    for (size_t i = 0; i < video_runs.size(); ++i) {
      WriteVideoRunJson(f, video_runs[i]);
      std::fprintf(f, i + 1 < video_runs.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_fleet.json\n");
  }
  std::printf(
      "\nExpected shape: below the admission-predicted knee the ladder is\n"
      "inert and both rows match; beyond it, ladder-off p95 grows\n"
      "super-linearly with N while ladder-on sheds fidelity (evictions,\n"
      "decimation, level > 0) and keeps p95 growth sub-linear.\n");
  return 0;
}
