// Figure 5: A/V benchmark — slow-motion A/V quality per platform.
// GoToMyPC and VNC are video-only (no audio support), as in the paper.
#include "bench/bench_common.h"

using namespace thinc;

namespace {

void RunConfig(const ExperimentConfig& config,
               const std::vector<SystemKind>& systems, SimTime duration) {
  std::printf("\n-- %s Desktop --\n", config.name.c_str());
  std::printf("%-10s %10s %14s %10s\n", "system", "quality_%", "frames", "audio_%");
  for (SystemKind kind : systems) {
    AvRunResult r = RunAvBenchmark(kind, config, duration);
    char frames[32];
    std::snprintf(frames, sizeof(frames), "%d/%d", r.frames_displayed,
                  r.frames_total);
    std::printf("%-10s %10.1f %14s %10s\n", r.system.c_str(), r.quality * 100,
                frames,
                r.audio_supported
                    ? std::to_string(static_cast<int>(r.audio_fraction * 100)).c_str()
                    : "n/a");
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const SimTime duration = BenchClipDuration();
  bench::PrintHeader("Figure 5: A/V Benchmark - A/V Quality",
                     "(352x240 24fps clip played full-screen; GoToMyPC/VNC video-only)");
  std::printf("clip duration: %.2f s (set THINC_AV_FULL=1 for the paper's 34.75 s)\n",
              static_cast<double>(duration) / kSecond);
  RunConfig(LanDesktopConfig(), bench::DesktopSystems(false), duration);
  RunConfig(WanDesktopConfig(), bench::DesktopSystems(true), duration);
  RunConfig(Pda80211gConfig(), bench::PdaSystems(), duration);
  std::printf(
      "\nPaper shape: THINC is the only thin client at 100%% in every network,\n"
      "including PDA; the local PC also reaches 100%%; everything else sits far\n"
      "below (NX worst LAN ~12%%, GoToMyPC worst WAN <2%%, VNC hurt by its pull\n"
      "model, RDP/ICA ~20%%).\n");
  return 0;
}
