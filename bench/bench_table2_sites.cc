// Table 2: the remote sites used for the WAN experiments, with their derived
// network characteristics and a measured Iperf-style throughput (the
// bandwidth bars of Figure 7).
#include "bench/bench_common.h"

using namespace thinc;

int main() {
  bench::PrintHeader(
      "Table 2: Remote Sites for WAN Experiments",
      "site  planetlab  distance_mi  rtt_ms  window_KB  iperf_Mbps  video_ok");
  double lan_iperf = MeasureIperfMbps(LanDesktopLink());
  for (const RemoteSite& site : RemoteSites()) {
    double mbps = MeasureIperfMbps(site.link);
    std::printf("%-5s %-9s  %11d  %6.1f  %9lld  %10.1f  %s\n", site.name.c_str(),
                site.planetlab ? "yes" : "no", site.distance_miles,
                static_cast<double>(site.link.rtt) / kMillisecond,
                static_cast<long long>(site.link.tcp_window_bytes >> 10), mbps,
                mbps >= 24.5 ? "yes" : "NO");
  }
  std::printf("(local LAN testbed iperf: %.1f Mbps; full-screen video needs ~24 Mbps)\n",
              lan_iperf);
  return 0;
}
