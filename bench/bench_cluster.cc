// Cluster-tier bench: knee scaling across hosts, hundreds-scale placement
// at a latency SLO, and live-migration blackout (DESIGN.md §14).
//
// Three questions, one per section:
//
//   * Does capacity scale with hosts? Each host of an H-host cluster should
//     carry the same per-host session knee a single host does — placement
//     is least-loaded and hosts are independent replicas, so the cluster
//     knee must land within 15% of per-host-knee x H.
//   * What does the cluster hold at the SLO in the hundreds? 32 hosts x
//     per-host-knee sessions, ladder + migration on, pooled p95 against
//     the same 1 s SLO — and one deliberately oversubscribed point beyond
//     it for contrast.
//   * What does a live migration cost the migrated user? A 2-host cluster
//     with every session pinned onto host 0 (an operator skew placement
//     would never create): the migration controller must move sessions to
//     the idle host, each handoff shipping a differential state delta over
//     the interconnect. Blackout — extract to first post-resume delivery —
//     must stay under one full-framebuffer refresh at the session link
//     rate, and no update may be lost (client framebuffers byte-identical
//     to a no-migration run after quiesce).
//
// The knee sweep drives real client clicks (input path through the shared
// NIC); migration scenarios drive SCHEDULED window-server renders instead,
// so draws land on the server whatever the connection state and a migrated
// run renders exactly the final screens of a no-migration run — which is
// what makes the zero-lost-updates hash check exact.
//
// Emits BENCH_cluster.json (virtual-time quantities only: byte-identical
// across reruns) and TRACE_cluster.json (Chrome trace of the migration
// scenario). --smoke runs the migration gate twice and THINC_CHECKs
// schedule + content determinism, zero lost updates, and the blackout
// bound; scripts/check.sh runs it on every commit.

#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/measure/experiment.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"
#include "src/workload/web.h"

using namespace thinc;

namespace {

constexpr double kSloMs = 1000.0;  // pooled p95 update-latency SLO

int PagesPerSession() {
  const char* env = std::getenv("THINC_CLUSTER_PAGES");
  if (env != nullptr && std::atoi(env) > 0) {
    return std::atoi(env);
  }
  return 4;
}

int ScaleHosts() {
  const char* env = std::getenv("THINC_CLUSTER_MAX_HOSTS");
  if (env != nullptr && std::atoi(env) > 0) {
    return std::atoi(env);
  }
  return 32;
}

ClusterOptions MakeOptions(const ClusterExperimentConfig& c) {
  ClusterOptions co;
  co.hosts = c.hosts;
  co.host.screen_width = c.screen_width;
  co.host.screen_height = c.screen_height;
  co.host.link = c.link;
  co.host.cpu_speed = c.host_cpu_speed;
  co.host.cpu_cores = c.host_cpu_cores;
  co.host.seed = c.seed;
  // Sockets sized for the shared link (committed bytes are un-sheddable);
  // fast overload sampling, one-burst-deep lag threshold — the fleet
  // capacity bench's provisioning, so per-host knees are comparable.
  co.host.send_buffer_bytes = 32 << 10;
  co.host.control_interval = 50 * kMillisecond;
  co.host.overload_lag = 1 * kSecond;
  co.interconnect_bps = c.interconnect_bps;
  co.interconnect_rtt = c.interconnect_rtt;
  return co;
}

int64_t PercentileUs(std::vector<int64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

double Ms(int64_t us) { return static_cast<double>(us) / kMillisecond; }

// One full-framebuffer refresh at the session link rate: the blackout a
// non-differential handoff would impose, and the bound migration must beat.
double FullRefreshMs(const ClusterExperimentConfig& c) {
  const double fb_bits = static_cast<double>(c.screen_width) *
                         c.screen_height * sizeof(Pixel) * 8.0;
  return fb_bits / static_cast<double>(c.link.bandwidth_bps) * 1000.0;
}

// --- Shared run harness ------------------------------------------------------

struct ClusterRun {
  int hosts = 0;
  int n = 0;
  bool ladder = false;
  bool migration = false;
  SimTime end_vtime = 0;
  int64_t wire_bytes = 0;
  std::vector<int64_t> session_bytes;  // per gid
  std::vector<uint64_t> hashes;        // per gid, client framebuffer
  size_t mismatched_pixels = 0;        // summed over gids
  double pooled_p95_ms = 0;
  int64_t spans_completed = 0;
  // Migration outcome.
  int64_t migrations = 0;
  int64_t differential = 0;
  int64_t bounced = 0;
  int64_t state_bytes_total = 0;
  std::vector<int64_t> blackouts_us;
  // (gid, from, to, start_us) per migration: the determinism transcript.
  std::vector<std::tuple<int64_t, size_t, size_t, SimTime>> schedule;
  uint64_t fired = 0;  // loop events (wall rate is printed, never emitted)
  double wall_ms = 0;
};

struct RunSpec {
  ClusterExperimentConfig config;
  int n = 0;               // total sessions
  bool ladder = false;
  bool migration = false;
  bool pin_host0 = false;  // operator skew: admit everything on host 0
  bool clicks = true;      // click-driven (knee) vs scheduled renders
  int pages = 4;
  const char* trace_path = nullptr;
};

ClusterRun RunCluster(const RunSpec& spec, const TelemetryConfig& tcfg) {
  const auto t0 = std::chrono::steady_clock::now();
  Telemetry& telemetry = Telemetry::Get();
  telemetry.Configure(tcfg);
  telemetry.ResetRuntime();
  MetricsRegistry::Get().ResetAll();

  EventLoop loop;
  ClusterOptions co = MakeOptions(spec.config);
  co.migration_enabled = spec.migration;
  co.host.degradation_enabled = spec.ladder;
  // Migration controller: react within a few bursts, move one session at a
  // time, and give a moved session a think-time of peace before moving it
  // again.
  co.control_interval = 100 * kMillisecond;
  co.ticks_to_migrate = 3;
  co.session_cooldown = spec.config.think_time;
  ClusterController cluster(&loop, co);
  WebWorkload web(spec.config.screen_width, spec.config.screen_height,
                  spec.config.seed);

  const int n = spec.n;
  for (int i = 0; i < n; ++i) {
    const int64_t gid = spec.pin_host0 ? cluster.AdmitOnHost(0, {})
                                       : cluster.AddSession({});
    THINC_CHECK_MSG(gid == i, "zero-demand session refused admission");
  }

  // Open-loop page schedule: session gid starts page p at
  // gid*stagger + p*think, on schedule regardless of delivery progress.
  const SimTime think = spec.config.think_time;
  const SimTime stagger = think / n;
  SimTime last_start = 0;
  std::vector<int> next_page(static_cast<size_t>(n), 0);  // clicks: must
                                                          // outlive loop.Run()
  if (spec.clicks) {
    for (int i = 0; i < n; ++i) {
      const int64_t gid = i;
      // Least-loaded placement round-robins identical hosts, so gid/H is
      // the session's per-host slot. Page sequences key off the SLOT, not
      // the gid: every host then renders the identical per-slot page mix —
      // hosts are true replicas of bench_fleet_capacity's single host and
      // the per-host knee is comparable across H. (Pinned scenarios use
      // scheduled renders, never this path.)
      const int64_t slot = gid / spec.config.hosts;
      cluster.SetInputCallback(
          gid, [&cluster, &web, &next_page, gid, slot](Point) {
            const int32_t page = static_cast<int32_t>(
                (slot * 7 + next_page[static_cast<size_t>(gid)]) %
                web.page_count());
            ++next_page[static_cast<size_t>(gid)];
            web.RenderPage(cluster.window_server(gid),
                           page,
                           cluster.host(cluster.host_of(gid))->host_cpu());
          });
    }
    for (int i = 0; i < n; ++i) {
      for (int p = 0; p < spec.pages; ++p) {
        const SimTime t = i * stagger + p * think;
        last_start = std::max(last_start, t);
        const int64_t gid = i;
        loop.ScheduleAt(t, [&cluster, &web, gid, p] {
          cluster.ClientClick(gid, web.LinkPosition(p % web.page_count()));
        });
      }
    }
  } else {
    // Scheduled renders: content-deterministic across migration on/off (a
    // click that lands during a handoff blackout is legitimately dropped, a
    // scheduled render is not — see file comment).
    for (int i = 0; i < n; ++i) {
      for (int p = 0; p < spec.pages; ++p) {
        const SimTime t = i * stagger + p * think;
        last_start = std::max(last_start, t);
        const int64_t gid = i;
        loop.ScheduleAt(t, [&cluster, &web, gid, p] {
          const int32_t page =
              static_cast<int32_t>((gid * 7 + p) % web.page_count());
          web.RenderPage(cluster.window_server(gid), page,
                         cluster.host(cluster.host_of(gid))->host_cpu());
        });
      }
    }
  }
  cluster.StartController(last_start + 5 * kSecond);
  loop.Run();
  cluster.FinalizeBlackouts();

  ClusterRun r;
  r.hosts = spec.config.hosts;
  r.n = n;
  r.ladder = spec.ladder;
  r.migration = spec.migration;
  r.end_vtime = loop.now();
  r.fired = loop.fired_count();
  std::map<int, int64_t> pid_to_session;
  for (int64_t gid = 0; gid < n; ++gid) {
    const int64_t bytes = cluster.BytesDeliveredToClient(gid);
    r.session_bytes.push_back(bytes);
    r.wire_bytes += bytes;
    r.hashes.push_back(cluster.ClientFramebufferHash(gid));
    r.mismatched_pixels += cluster.MismatchedPixels(gid);
    pid_to_session[cluster.server(gid)->telemetry_pid()] = gid;
  }
  if (tcfg.spans) {
    std::vector<int64_t> pooled;
    for (const UpdateSpan& s : telemetry.spans()) {
      if (!s.completed()) {
        continue;
      }
      ++r.spans_completed;
      pooled.push_back(s.damaged.ts - s.queued.ts);
    }
    r.pooled_p95_ms = Ms(PercentileUs(std::move(pooled), 0.95));
  }
  for (const MigrationRecord& rec : cluster.migrations()) {
    if (rec.resume == 0) {
      continue;  // still in flight at quiesce (drained loop: never)
    }
    ++r.migrations;
    r.differential += rec.differential ? 1 : 0;
    r.bounced += rec.bounced ? 1 : 0;
    r.state_bytes_total += static_cast<int64_t>(rec.state_bytes);
    r.blackouts_us.push_back(rec.blackout_end - rec.start);
    r.schedule.emplace_back(rec.gid, rec.from_host, rec.to_host, rec.start);
  }
  if (spec.trace_path != nullptr && tcfg.chrome_trace) {
    if (telemetry.WriteChromeTrace(spec.trace_path)) {
      std::printf("wrote %s (one pid per session; load in Perfetto)\n",
                  spec.trace_path);
    }
  }
  telemetry.Configure(TelemetryConfig{});
  telemetry.ResetRuntime();
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

// --- Section 1: knee vs hosts ------------------------------------------------

struct KneeResult {
  int hosts = 0;
  int knee_per_host = 0;  // largest k with pooled p95 <= SLO at N = k*hosts
  std::vector<ClusterRun> runs;
};

KneeResult SweepKnee(int hosts, int pages, const TelemetryConfig& spans_only) {
  KneeResult kr;
  kr.hosts = hosts;
  for (int k : {2, 4, 5, 6, 7, 8}) {
    RunSpec spec;
    spec.config = WebClusterConfig(hosts);
    spec.n = k * hosts;
    spec.pages = pages;
    ClusterRun r = RunCluster(spec, spans_only);
    std::printf("%6d %4d %4d %14.1f %10lld %12lld %10.0f\n", hosts, k, r.n,
                r.pooled_p95_ms, static_cast<long long>(r.spans_completed),
                static_cast<long long>(r.wire_bytes),
                static_cast<double>(r.fired) / (r.wall_ms / 1000.0));
    std::fflush(stdout);
    if (r.pooled_p95_ms <= kSloMs) {
      kr.knee_per_host = std::max(kr.knee_per_host, k);
    }
    kr.runs.push_back(std::move(r));
  }
  return kr;
}

// --- Section 3: migration scenario -------------------------------------------

struct MigrationScenario {
  ClusterRun with;      // migration on
  ClusterRun without;   // migration off (same draws)
  double blackout_p50_ms = 0;
  double blackout_p95_ms = 0;
  double full_refresh_ms = 0;
};

MigrationScenario RunMigrationScenario(int n, int pages,
                                       const TelemetryConfig& tcfg,
                                       const char* trace_path = nullptr) {
  MigrationScenario m;
  RunSpec spec;
  spec.config = WebClusterConfig(/*hosts=*/2);
  spec.n = n;
  spec.pages = pages;
  spec.pin_host0 = true;
  spec.clicks = false;  // content determinism: see file comment
  spec.migration = true;
  spec.trace_path = trace_path;
  m.with = RunCluster(spec, tcfg);
  spec.migration = false;
  spec.trace_path = nullptr;
  m.without = RunCluster(spec, tcfg);
  m.blackout_p50_ms = Ms(PercentileUs(m.with.blackouts_us, 0.50));
  m.blackout_p95_ms = Ms(PercentileUs(m.with.blackouts_us, 0.95));
  m.full_refresh_ms = FullRefreshMs(spec.config);
  return m;
}

void CheckMigrationInvariants(const MigrationScenario& m) {
  THINC_CHECK_MSG(m.with.migrations >= 1,
                  "skewed cluster never migrated a session");
  THINC_CHECK_MSG(m.without.migrations == 0,
                  "migration ran while disabled");
  THINC_CHECK_MSG(m.with.mismatched_pixels == 0,
                  "migration lost updates (client != server screen)");
  THINC_CHECK_MSG(m.without.mismatched_pixels == 0,
                  "baseline run failed to converge");
  THINC_CHECK_MSG(m.with.hashes == m.without.hashes,
                  "migrated run delivered different final content");
  THINC_CHECK_MSG(m.blackout_p95_ms < m.full_refresh_ms,
                  "migration blackout worse than a full-refresh handoff");
}

// --- Smoke gate (scripts/check.sh) -------------------------------------------

int RunSmoke() {
  bench::PrintHeader(
      "Cluster smoke: migration determinism + zero lost updates",
      "(10 sessions pinned on host 0 of 2; run twice, transcripts must match)");
  TelemetryConfig off;
  TelemetryConfig on;
  on.spans = true;
  MigrationScenario a = RunMigrationScenario(10, /*pages=*/2, off);
  MigrationScenario b = RunMigrationScenario(10, /*pages=*/2, on);
  CheckMigrationInvariants(a);
  CheckMigrationInvariants(b);
  THINC_CHECK_MSG(a.with.schedule == b.with.schedule,
                  "migration schedule changed across reruns");
  THINC_CHECK_MSG(a.with.session_bytes == b.with.session_bytes,
                  "delivered bytes changed across reruns (telemetry on/off)");
  THINC_CHECK_MSG(a.with.hashes == b.with.hashes,
                  "delivered content changed across reruns");
  THINC_CHECK_MSG(a.with.end_vtime == b.with.end_vtime,
                  "telemetry changed cluster virtual time");
  std::printf(
      "%lld migrations (%lld differential), blackout p95 %.1f ms "
      "(full-refresh bound %.0f ms), 0 lost updates, deterministic across "
      "reruns with telemetry off and on\n",
      static_cast<long long>(a.with.migrations),
      static_cast<long long>(a.with.differential), a.blackout_p95_ms,
      a.full_refresh_ms);
  return 0;
}

void WriteRunJson(std::FILE* f, const ClusterRun& r) {
  std::fprintf(f,
               "      {\"hosts\": %d, \"n\": %d, \"ladder\": %s, "
               "\"migration\": %s, \"pooled_p95_ms\": %.3f, \"updates\": "
               "%lld, \"wire_bytes\": %lld, \"migrations\": %lld, "
               "\"end_vtime_us\": %lld}",
               r.hosts, r.n, r.ladder ? "true" : "false",
               r.migration ? "true" : "false", r.pooled_p95_ms,
               static_cast<long long>(r.spans_completed),
               static_cast<long long>(r.wire_bytes),
               static_cast<long long>(r.migrations),
               static_cast<long long>(r.end_vtime));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke();
  }
  const int pages = PagesPerSession();
  TelemetryConfig spans_only;
  spans_only.spans = true;

  const ClusterExperimentConfig base = WebClusterConfig(1);
  bench::PrintHeader(
      "Cluster tier: knee scaling, hundreds-scale SLO, migration blackout",
      "(least-loaded placement; per-session screens, fleet web workload)");
  std::printf("per-session screen %dx%d, %d pages/session, think %.1f s, "
              "host NIC %lld Mbps, interconnect %lld Mbps\n",
              base.screen_width, base.screen_height, pages,
              static_cast<double>(base.think_time) / kSecond,
              static_cast<long long>(base.link.bandwidth_bps / 1'000'000),
              static_cast<long long>(base.interconnect_bps / 1'000'000));

  // -- Knee vs hosts: H independent hosts must hold H x the per-host knee.
  std::printf("\n-- Knee vs hosts (ladder off, migration off; SLO pooled "
              "p95 <= %.0f ms) --\n", kSloMs);
  std::printf("%6s %4s %4s %14s %10s %12s %10s\n", "hosts", "k", "N",
              "pooled_p95_ms", "updates", "wire_bytes", "events/s");
  std::vector<KneeResult> knees;
  for (int hosts : {1, 2, 4}) {
    knees.push_back(SweepKnee(hosts, pages, spans_only));
  }
  const int knee1 = knees[0].knee_per_host;
  std::printf("\nper-host knee: ");
  for (const KneeResult& kr : knees) {
    std::printf("H=%d -> %d sessions/host (%d total)   ", kr.hosts,
                kr.knee_per_host, kr.knee_per_host * kr.hosts);
  }
  std::printf("\n");
  for (const KneeResult& kr : knees) {
    const double deviation =
        std::abs(kr.knee_per_host - knee1) / std::max(1.0, double(knee1));
    THINC_CHECK_MSG(deviation <= 0.15,
                    "cluster knee not within 15%% of per-host knee x hosts");
  }

  // -- Hundreds-scale: the cluster at the knee (SLO held) and past it.
  const int scale_hosts = ScaleHosts();
  std::printf("\n-- Hundreds-scale (H=%d, ladder on, migration on) --\n",
              scale_hosts);
  std::printf("%6s %4s %4s %14s %10s %12s %10s %6s\n", "hosts", "k", "N",
              "pooled_p95_ms", "updates", "migrations", "events/s", "SLO");
  std::vector<ClusterRun> scale_runs;
  for (int k : {knee1, knee1 + 2}) {
    RunSpec spec;
    spec.config = WebClusterConfig(scale_hosts);
    spec.n = k * scale_hosts;
    spec.pages = std::min(pages, 2);
    spec.ladder = true;
    spec.migration = true;
    ClusterRun r = RunCluster(spec, spans_only);
    std::printf("%6d %4d %4d %14.1f %10lld %12lld %10.0f %6s\n", scale_hosts,
                k, r.n, r.pooled_p95_ms,
                static_cast<long long>(r.spans_completed),
                static_cast<long long>(r.migrations),
                static_cast<double>(r.fired) / (r.wall_ms / 1000.0),
                r.pooled_p95_ms <= kSloMs ? "yes" : "no");
    std::fflush(stdout);
    scale_runs.push_back(std::move(r));
  }

  // -- Migration blackout: skewed 2-host cluster, everything on host 0.
  std::printf("\n-- Migration blackout (10 sessions pinned on host 0 of 2) "
              "--\n");
  TelemetryConfig with_trace = spans_only;
  with_trace.chrome_trace = true;
  MigrationScenario m =
      RunMigrationScenario(10, pages, with_trace, "TRACE_cluster.json");
  CheckMigrationInvariants(m);
  std::printf(
      "migrations: %lld (%lld differential, %lld bounced), state shipped "
      "%lld bytes total\n",
      static_cast<long long>(m.with.migrations),
      static_cast<long long>(m.with.differential),
      static_cast<long long>(m.with.bounced),
      static_cast<long long>(m.with.state_bytes_total));
  std::printf(
      "blackout p50 %.1f ms, p95 %.1f ms — full-refresh handoff bound "
      "%.0f ms\n",
      m.blackout_p50_ms, m.blackout_p95_ms, m.full_refresh_ms);
  std::printf(
      "pooled p95: %.1f ms with migration vs %.1f ms without (same draws; "
      "0 lost updates, identical final content)\n",
      m.with.pooled_p95_ms, m.without.pooled_p95_ms);

  std::FILE* f = std::fopen("BENCH_cluster.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n  \"config\": {\"screen\": [%d, %d], \"pages_per_session\": %d, "
        "\"think_ms\": %lld, \"host_nic_bps\": %lld, \"interconnect_bps\": "
        "%lld, \"slo_ms\": %.0f},\n",
        base.screen_width, base.screen_height, pages,
        static_cast<long long>(base.think_time / kMillisecond),
        static_cast<long long>(base.link.bandwidth_bps),
        static_cast<long long>(base.interconnect_bps), kSloMs);
    std::fprintf(f, "  \"knee\": {\n    \"per_host\": {");
    for (size_t i = 0; i < knees.size(); ++i) {
      std::fprintf(f, "%s\"h%d\": %d", i > 0 ? ", " : "", knees[i].hosts,
                   knees[i].knee_per_host);
    }
    std::fprintf(f, "},\n    \"sweep\": [\n");
    bool first = true;
    for (const KneeResult& kr : knees) {
      for (const ClusterRun& r : kr.runs) {
        if (!first) {
          std::fprintf(f, ",\n");
        }
        first = false;
        WriteRunJson(f, r);
      }
    }
    std::fprintf(f, "\n    ]\n  },\n  \"scale\": {\n    \"sweep\": [\n");
    for (size_t i = 0; i < scale_runs.size(); ++i) {
      WriteRunJson(f, scale_runs[i]);
      std::fprintf(f, i + 1 < scale_runs.size() ? ",\n" : "\n");
    }
    std::fprintf(
        f,
        "    ]\n  },\n  \"migration\": {\"sessions\": %d, \"migrations\": "
        "%lld, \"differential\": %lld, \"bounced\": %lld, "
        "\"state_bytes_total\": %lld, \"blackout_p50_ms\": %.3f, "
        "\"blackout_p95_ms\": %.3f, \"full_refresh_bound_ms\": %.3f, "
        "\"p95_ms_with\": %.3f, \"p95_ms_without\": %.3f, "
        "\"lost_updates\": %lld}\n}\n",
        m.with.n, static_cast<long long>(m.with.migrations),
        static_cast<long long>(m.with.differential),
        static_cast<long long>(m.with.bounced),
        static_cast<long long>(m.with.state_bytes_total), m.blackout_p50_ms,
        m.blackout_p95_ms, m.full_refresh_ms, m.with.pooled_p95_ms,
        m.without.pooled_p95_ms,
        static_cast<long long>(m.with.mismatched_pixels));
    std::fclose(f);
    std::printf("\nwrote BENCH_cluster.json\n");
  }
  std::printf(
      "\nExpected shape: the per-host knee is flat in H (hosts are\n"
      "independent replicas behind least-loaded placement); at hundreds of\n"
      "sessions the cluster holds the SLO at knee sessions/host and blows\n"
      "past it two beyond; migration blackout stays orders of magnitude\n"
      "under the full-refresh handoff bound because the delta is\n"
      "differential.\n");
  return 0;
}
