// Ablation A6: session-sharing scalability.
//
// The paper motivates consolidation ("computing resources can be
// consolidated and shared across many users") and screen sharing. This
// bench measures how one shared session scales with viewer count: total
// host CPU per page, aggregate bandwidth, and worst-viewer latency.
#include "bench/bench_common.h"

#include "src/core/session_share.h"
#include "src/workload/web.h"

using namespace thinc;

int main() {
  bench::PrintHeader(
      "Ablation: Screen-Sharing Scalability (LAN viewers)",
      "viewers  page_ms_worst  host_cpu_ms/page  total_KB/page  "
      "enc_charges/page  enc_reuses/page");
  const int32_t pages = 8;
  for (int viewers : {1, 2, 4, 8, 16}) {
    EventLoop loop;
    SharedSessionHost host(&loop, 1024, 768);
    std::vector<SharedSessionHost::Viewer*> vs;
    for (int i = 0; i < viewers; ++i) {
      vs.push_back(host.AddViewer(LanDesktopLink()));
    }
    loop.Run();
    WebWorkload workload(1024, 768);
    SimTime cpu0 = host.host_cpu()->total_busy();
    BufferStats encode0 = bench::SnapshotBufferStats();
    double worst_ms = 0;
    int64_t total_bytes = 0;
    std::vector<int64_t> base;
    for (auto* v : vs) {
      base.push_back(v->conn->BytesDeliveredTo(Connection::kClient));
    }
    for (int32_t p = 0; p < pages; ++p) {
      loop.RunUntil(loop.now() + 200 * kMillisecond);
      SimTime t0 = loop.now();
      workload.RenderPage(host.window_server(), p, host.host_cpu());
      loop.Run();
      SimTime done = 0;
      for (auto* v : vs) {
        done = std::max(done, v->conn->LastDeliveryTo(Connection::kClient));
      }
      worst_ms += static_cast<double>(done - t0) / kMillisecond / pages;
    }
    for (size_t i = 0; i < vs.size(); ++i) {
      total_bytes += vs[i]->conn->BytesDeliveredTo(Connection::kClient) - base[i];
    }
    BufferStats encodes = bench::BufferStatsDelta(encode0, bench::SnapshotBufferStats());
    std::printf("%7d %14.0f %17.1f %14.0f %16.1f %16.1f\n", viewers, worst_ms,
                static_cast<double>(host.host_cpu()->total_busy() - cpu0) /
                    kMillisecond / pages,
                static_cast<double>(total_bytes) / 1024.0 / pages,
                static_cast<double>(encodes.encode_charges) / pages,
                static_cast<double>(encodes.payload_encode_hits +
                                    encodes.frame_cache_hits) / pages);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected: bandwidth scales linearly with viewers (each gets its own\n"
      "stream), but encode cost does NOT: the shared frame cache (plus its\n"
      "in-flight registry — a viewer arriving while another viewer's encode\n"
      "of the same frame is still running waits for it instead of starting\n"
      "a duplicate) amortizes the charged RAW encode CPU to ~1 encode per\n"
      "frame regardless of viewer count: enc_charges/page stays flat while\n"
      "enc_reuses/page grows with N, and so host CPU per page and worst\n"
      "viewer latency stay nearly flat too. What still rises with N is\n"
      "per-viewer translation and encryption work — the consolidation\n"
      "trade-off that ultimately bounds fan-out.\n");
  return 0;
}
