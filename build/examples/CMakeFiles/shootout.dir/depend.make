# Empty dependencies file for shootout.
# This may be replaced when dependencies are built.
