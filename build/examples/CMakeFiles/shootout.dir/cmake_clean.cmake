file(REMOVE_RECURSE
  "CMakeFiles/shootout.dir/shootout.cpp.o"
  "CMakeFiles/shootout.dir/shootout.cpp.o.d"
  "shootout"
  "shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
