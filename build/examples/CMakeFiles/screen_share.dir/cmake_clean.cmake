file(REMOVE_RECURSE
  "CMakeFiles/screen_share.dir/screen_share.cpp.o"
  "CMakeFiles/screen_share.dir/screen_share.cpp.o.d"
  "screen_share"
  "screen_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screen_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
