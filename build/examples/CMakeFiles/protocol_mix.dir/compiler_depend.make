# Empty compiler generated dependencies file for protocol_mix.
# This may be replaced when dependencies are built.
