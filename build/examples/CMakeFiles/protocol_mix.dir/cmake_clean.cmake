file(REMOVE_RECURSE
  "CMakeFiles/protocol_mix.dir/protocol_mix.cpp.o"
  "CMakeFiles/protocol_mix.dir/protocol_mix.cpp.o.d"
  "protocol_mix"
  "protocol_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
