file(REMOVE_RECURSE
  "CMakeFiles/pda_zoom.dir/pda_zoom.cpp.o"
  "CMakeFiles/pda_zoom.dir/pda_zoom.cpp.o.d"
  "pda_zoom"
  "pda_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pda_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
