# Empty compiler generated dependencies file for pda_zoom.
# This may be replaced when dependencies are built.
