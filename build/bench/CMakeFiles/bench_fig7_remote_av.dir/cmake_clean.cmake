file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_remote_av.dir/bench_fig7_remote_av.cc.o"
  "CMakeFiles/bench_fig7_remote_av.dir/bench_fig7_remote_av.cc.o.d"
  "bench_fig7_remote_av"
  "bench_fig7_remote_av.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_remote_av.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
