# Empty compiler generated dependencies file for bench_fig7_remote_av.
# This may be replaced when dependencies are built.
