# Empty compiler generated dependencies file for bench_ablation_offscreen.
# This may be replaced when dependencies are built.
