file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_offscreen.dir/bench_ablation_offscreen.cc.o"
  "CMakeFiles/bench_ablation_offscreen.dir/bench_ablation_offscreen.cc.o.d"
  "bench_ablation_offscreen"
  "bench_ablation_offscreen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_offscreen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
