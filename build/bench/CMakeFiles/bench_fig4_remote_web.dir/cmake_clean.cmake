file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_remote_web.dir/bench_fig4_remote_web.cc.o"
  "CMakeFiles/bench_fig4_remote_web.dir/bench_fig4_remote_web.cc.o.d"
  "bench_fig4_remote_web"
  "bench_fig4_remote_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_remote_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
