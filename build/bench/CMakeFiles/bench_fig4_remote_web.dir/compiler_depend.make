# Empty compiler generated dependencies file for bench_fig4_remote_web.
# This may be replaced when dependencies are built.
