# Empty compiler generated dependencies file for bench_fig3_web_data.
# This may be replaced when dependencies are built.
