file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_web_data.dir/bench_fig3_web_data.cc.o"
  "CMakeFiles/bench_fig3_web_data.dir/bench_fig3_web_data.cc.o.d"
  "bench_fig3_web_data"
  "bench_fig3_web_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_web_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
