file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_push_pull.dir/bench_ablation_push_pull.cc.o"
  "CMakeFiles/bench_ablation_push_pull.dir/bench_ablation_push_pull.cc.o.d"
  "bench_ablation_push_pull"
  "bench_ablation_push_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_push_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
