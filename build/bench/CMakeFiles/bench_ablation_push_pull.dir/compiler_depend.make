# Empty compiler generated dependencies file for bench_ablation_push_pull.
# This may be replaced when dependencies are built.
