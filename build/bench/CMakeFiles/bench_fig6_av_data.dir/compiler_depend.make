# Empty compiler generated dependencies file for bench_fig6_av_data.
# This may be replaced when dependencies are built.
