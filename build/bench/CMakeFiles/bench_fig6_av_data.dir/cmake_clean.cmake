file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_av_data.dir/bench_fig6_av_data.cc.o"
  "CMakeFiles/bench_fig6_av_data.dir/bench_fig6_av_data.cc.o.d"
  "bench_fig6_av_data"
  "bench_fig6_av_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_av_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
