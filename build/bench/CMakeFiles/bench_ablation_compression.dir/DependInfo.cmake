
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_compression.cc" "bench/CMakeFiles/bench_ablation_compression.dir/bench_ablation_compression.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_compression.dir/bench_ablation_compression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/thinc_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/thinc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/thinc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/thinc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/thinc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/thinc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/thinc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/thinc_display.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/thinc_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/thinc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
