# Empty dependencies file for bench_fig5_av_quality.
# This may be replaced when dependencies are built.
