file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resize.dir/bench_ablation_resize.cc.o"
  "CMakeFiles/bench_ablation_resize.dir/bench_ablation_resize.cc.o.d"
  "bench_ablation_resize"
  "bench_ablation_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
