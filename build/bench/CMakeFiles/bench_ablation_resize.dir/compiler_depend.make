# Empty compiler generated dependencies file for bench_ablation_resize.
# This may be replaced when dependencies are built.
