file(REMOVE_RECURSE
  "CMakeFiles/test_systems.dir/baselines_test.cc.o"
  "CMakeFiles/test_systems.dir/baselines_test.cc.o.d"
  "CMakeFiles/test_systems.dir/client_robustness_test.cc.o"
  "CMakeFiles/test_systems.dir/client_robustness_test.cc.o.d"
  "CMakeFiles/test_systems.dir/experiment_test.cc.o"
  "CMakeFiles/test_systems.dir/experiment_test.cc.o.d"
  "CMakeFiles/test_systems.dir/fidelity_property_test.cc.o"
  "CMakeFiles/test_systems.dir/fidelity_property_test.cc.o.d"
  "CMakeFiles/test_systems.dir/session_share_test.cc.o"
  "CMakeFiles/test_systems.dir/session_share_test.cc.o.d"
  "CMakeFiles/test_systems.dir/thinc_system_test.cc.o"
  "CMakeFiles/test_systems.dir/thinc_system_test.cc.o.d"
  "CMakeFiles/test_systems.dir/viewport_property_test.cc.o"
  "CMakeFiles/test_systems.dir/viewport_property_test.cc.o.d"
  "CMakeFiles/test_systems.dir/workload_test.cc.o"
  "CMakeFiles/test_systems.dir/workload_test.cc.o.d"
  "test_systems"
  "test_systems.pdb"
  "test_systems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
