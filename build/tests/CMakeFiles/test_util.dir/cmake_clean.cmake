file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/cpu_test.cc.o"
  "CMakeFiles/test_util.dir/cpu_test.cc.o.d"
  "CMakeFiles/test_util.dir/event_loop_test.cc.o"
  "CMakeFiles/test_util.dir/event_loop_test.cc.o.d"
  "CMakeFiles/test_util.dir/geometry_test.cc.o"
  "CMakeFiles/test_util.dir/geometry_test.cc.o.d"
  "CMakeFiles/test_util.dir/prng_test.cc.o"
  "CMakeFiles/test_util.dir/prng_test.cc.o.d"
  "CMakeFiles/test_util.dir/region_test.cc.o"
  "CMakeFiles/test_util.dir/region_test.cc.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
