# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_raster[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_display[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_systems[1]_include.cmake")
