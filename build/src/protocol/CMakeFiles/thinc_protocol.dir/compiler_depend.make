# Empty compiler generated dependencies file for thinc_protocol.
# This may be replaced when dependencies are built.
