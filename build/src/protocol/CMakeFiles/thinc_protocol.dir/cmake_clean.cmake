file(REMOVE_RECURSE
  "CMakeFiles/thinc_protocol.dir/wire.cc.o"
  "CMakeFiles/thinc_protocol.dir/wire.cc.o.d"
  "libthinc_protocol.a"
  "libthinc_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
