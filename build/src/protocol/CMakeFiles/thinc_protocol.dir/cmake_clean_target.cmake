file(REMOVE_RECURSE
  "libthinc_protocol.a"
)
