file(REMOVE_RECURSE
  "libthinc_net.a"
)
