# Empty dependencies file for thinc_net.
# This may be replaced when dependencies are built.
