file(REMOVE_RECURSE
  "CMakeFiles/thinc_net.dir/connection.cc.o"
  "CMakeFiles/thinc_net.dir/connection.cc.o.d"
  "CMakeFiles/thinc_net.dir/link.cc.o"
  "CMakeFiles/thinc_net.dir/link.cc.o.d"
  "libthinc_net.a"
  "libthinc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
