
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/hextile.cc" "src/codec/CMakeFiles/thinc_codec.dir/hextile.cc.o" "gcc" "src/codec/CMakeFiles/thinc_codec.dir/hextile.cc.o.d"
  "/root/repo/src/codec/lzss.cc" "src/codec/CMakeFiles/thinc_codec.dir/lzss.cc.o" "gcc" "src/codec/CMakeFiles/thinc_codec.dir/lzss.cc.o.d"
  "/root/repo/src/codec/palette.cc" "src/codec/CMakeFiles/thinc_codec.dir/palette.cc.o" "gcc" "src/codec/CMakeFiles/thinc_codec.dir/palette.cc.o.d"
  "/root/repo/src/codec/pnglike.cc" "src/codec/CMakeFiles/thinc_codec.dir/pnglike.cc.o" "gcc" "src/codec/CMakeFiles/thinc_codec.dir/pnglike.cc.o.d"
  "/root/repo/src/codec/rc4.cc" "src/codec/CMakeFiles/thinc_codec.dir/rc4.cc.o" "gcc" "src/codec/CMakeFiles/thinc_codec.dir/rc4.cc.o.d"
  "/root/repo/src/codec/rle.cc" "src/codec/CMakeFiles/thinc_codec.dir/rle.cc.o" "gcc" "src/codec/CMakeFiles/thinc_codec.dir/rle.cc.o.d"
  "/root/repo/src/codec/rle32.cc" "src/codec/CMakeFiles/thinc_codec.dir/rle32.cc.o" "gcc" "src/codec/CMakeFiles/thinc_codec.dir/rle32.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/thinc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/thinc_raster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
