file(REMOVE_RECURSE
  "CMakeFiles/thinc_codec.dir/hextile.cc.o"
  "CMakeFiles/thinc_codec.dir/hextile.cc.o.d"
  "CMakeFiles/thinc_codec.dir/lzss.cc.o"
  "CMakeFiles/thinc_codec.dir/lzss.cc.o.d"
  "CMakeFiles/thinc_codec.dir/palette.cc.o"
  "CMakeFiles/thinc_codec.dir/palette.cc.o.d"
  "CMakeFiles/thinc_codec.dir/pnglike.cc.o"
  "CMakeFiles/thinc_codec.dir/pnglike.cc.o.d"
  "CMakeFiles/thinc_codec.dir/rc4.cc.o"
  "CMakeFiles/thinc_codec.dir/rc4.cc.o.d"
  "CMakeFiles/thinc_codec.dir/rle.cc.o"
  "CMakeFiles/thinc_codec.dir/rle.cc.o.d"
  "CMakeFiles/thinc_codec.dir/rle32.cc.o"
  "CMakeFiles/thinc_codec.dir/rle32.cc.o.d"
  "libthinc_codec.a"
  "libthinc_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
