file(REMOVE_RECURSE
  "libthinc_codec.a"
)
