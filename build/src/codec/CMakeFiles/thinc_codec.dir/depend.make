# Empty dependencies file for thinc_codec.
# This may be replaced when dependencies are built.
