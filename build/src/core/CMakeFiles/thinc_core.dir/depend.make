# Empty dependencies file for thinc_core.
# This may be replaced when dependencies are built.
