file(REMOVE_RECURSE
  "libthinc_core.a"
)
