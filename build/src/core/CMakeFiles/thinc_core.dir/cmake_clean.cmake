file(REMOVE_RECURSE
  "CMakeFiles/thinc_core.dir/command.cc.o"
  "CMakeFiles/thinc_core.dir/command.cc.o.d"
  "CMakeFiles/thinc_core.dir/command_queue.cc.o"
  "CMakeFiles/thinc_core.dir/command_queue.cc.o.d"
  "CMakeFiles/thinc_core.dir/scheduler.cc.o"
  "CMakeFiles/thinc_core.dir/scheduler.cc.o.d"
  "CMakeFiles/thinc_core.dir/session_share.cc.o"
  "CMakeFiles/thinc_core.dir/session_share.cc.o.d"
  "CMakeFiles/thinc_core.dir/thinc_client.cc.o"
  "CMakeFiles/thinc_core.dir/thinc_client.cc.o.d"
  "CMakeFiles/thinc_core.dir/thinc_server.cc.o"
  "CMakeFiles/thinc_core.dir/thinc_server.cc.o.d"
  "libthinc_core.a"
  "libthinc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
