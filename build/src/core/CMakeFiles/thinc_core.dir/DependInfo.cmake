
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/command.cc" "src/core/CMakeFiles/thinc_core.dir/command.cc.o" "gcc" "src/core/CMakeFiles/thinc_core.dir/command.cc.o.d"
  "/root/repo/src/core/command_queue.cc" "src/core/CMakeFiles/thinc_core.dir/command_queue.cc.o" "gcc" "src/core/CMakeFiles/thinc_core.dir/command_queue.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/thinc_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/thinc_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/session_share.cc" "src/core/CMakeFiles/thinc_core.dir/session_share.cc.o" "gcc" "src/core/CMakeFiles/thinc_core.dir/session_share.cc.o.d"
  "/root/repo/src/core/thinc_client.cc" "src/core/CMakeFiles/thinc_core.dir/thinc_client.cc.o" "gcc" "src/core/CMakeFiles/thinc_core.dir/thinc_client.cc.o.d"
  "/root/repo/src/core/thinc_server.cc" "src/core/CMakeFiles/thinc_core.dir/thinc_server.cc.o" "gcc" "src/core/CMakeFiles/thinc_core.dir/thinc_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/thinc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/thinc_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/thinc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/thinc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/thinc_display.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/thinc_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
