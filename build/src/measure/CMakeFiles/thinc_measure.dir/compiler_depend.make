# Empty compiler generated dependencies file for thinc_measure.
# This may be replaced when dependencies are built.
