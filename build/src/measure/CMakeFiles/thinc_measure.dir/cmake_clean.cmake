file(REMOVE_RECURSE
  "CMakeFiles/thinc_measure.dir/experiment.cc.o"
  "CMakeFiles/thinc_measure.dir/experiment.cc.o.d"
  "libthinc_measure.a"
  "libthinc_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
