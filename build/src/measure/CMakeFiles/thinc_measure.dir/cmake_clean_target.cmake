file(REMOVE_RECURSE
  "libthinc_measure.a"
)
