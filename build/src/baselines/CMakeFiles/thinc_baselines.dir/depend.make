# Empty dependencies file for thinc_baselines.
# This may be replaced when dependencies are built.
