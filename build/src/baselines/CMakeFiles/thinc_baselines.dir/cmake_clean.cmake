file(REMOVE_RECURSE
  "CMakeFiles/thinc_baselines.dir/local_pc.cc.o"
  "CMakeFiles/thinc_baselines.dir/local_pc.cc.o.d"
  "CMakeFiles/thinc_baselines.dir/rdp_system.cc.o"
  "CMakeFiles/thinc_baselines.dir/rdp_system.cc.o.d"
  "CMakeFiles/thinc_baselines.dir/scrape_system.cc.o"
  "CMakeFiles/thinc_baselines.dir/scrape_system.cc.o.d"
  "CMakeFiles/thinc_baselines.dir/sunray_system.cc.o"
  "CMakeFiles/thinc_baselines.dir/sunray_system.cc.o.d"
  "CMakeFiles/thinc_baselines.dir/thinc_system.cc.o"
  "CMakeFiles/thinc_baselines.dir/thinc_system.cc.o.d"
  "CMakeFiles/thinc_baselines.dir/x_system.cc.o"
  "CMakeFiles/thinc_baselines.dir/x_system.cc.o.d"
  "libthinc_baselines.a"
  "libthinc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
