
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/local_pc.cc" "src/baselines/CMakeFiles/thinc_baselines.dir/local_pc.cc.o" "gcc" "src/baselines/CMakeFiles/thinc_baselines.dir/local_pc.cc.o.d"
  "/root/repo/src/baselines/rdp_system.cc" "src/baselines/CMakeFiles/thinc_baselines.dir/rdp_system.cc.o" "gcc" "src/baselines/CMakeFiles/thinc_baselines.dir/rdp_system.cc.o.d"
  "/root/repo/src/baselines/scrape_system.cc" "src/baselines/CMakeFiles/thinc_baselines.dir/scrape_system.cc.o" "gcc" "src/baselines/CMakeFiles/thinc_baselines.dir/scrape_system.cc.o.d"
  "/root/repo/src/baselines/sunray_system.cc" "src/baselines/CMakeFiles/thinc_baselines.dir/sunray_system.cc.o" "gcc" "src/baselines/CMakeFiles/thinc_baselines.dir/sunray_system.cc.o.d"
  "/root/repo/src/baselines/thinc_system.cc" "src/baselines/CMakeFiles/thinc_baselines.dir/thinc_system.cc.o" "gcc" "src/baselines/CMakeFiles/thinc_baselines.dir/thinc_system.cc.o.d"
  "/root/repo/src/baselines/x_system.cc" "src/baselines/CMakeFiles/thinc_baselines.dir/x_system.cc.o" "gcc" "src/baselines/CMakeFiles/thinc_baselines.dir/x_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/thinc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/thinc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/thinc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/thinc_display.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/thinc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/thinc_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/thinc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
