file(REMOVE_RECURSE
  "libthinc_baselines.a"
)
