file(REMOVE_RECURSE
  "CMakeFiles/thinc_display.dir/window_server.cc.o"
  "CMakeFiles/thinc_display.dir/window_server.cc.o.d"
  "libthinc_display.a"
  "libthinc_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
