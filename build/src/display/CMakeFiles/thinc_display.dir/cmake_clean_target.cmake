file(REMOVE_RECURSE
  "libthinc_display.a"
)
