# Empty compiler generated dependencies file for thinc_display.
# This may be replaced when dependencies are built.
