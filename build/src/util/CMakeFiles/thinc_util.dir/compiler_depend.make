# Empty compiler generated dependencies file for thinc_util.
# This may be replaced when dependencies are built.
