file(REMOVE_RECURSE
  "libthinc_util.a"
)
