file(REMOVE_RECURSE
  "CMakeFiles/thinc_util.dir/event_loop.cc.o"
  "CMakeFiles/thinc_util.dir/event_loop.cc.o.d"
  "CMakeFiles/thinc_util.dir/region.cc.o"
  "CMakeFiles/thinc_util.dir/region.cc.o.d"
  "libthinc_util.a"
  "libthinc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
