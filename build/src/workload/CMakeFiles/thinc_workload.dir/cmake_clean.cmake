file(REMOVE_RECURSE
  "CMakeFiles/thinc_workload.dir/video.cc.o"
  "CMakeFiles/thinc_workload.dir/video.cc.o.d"
  "CMakeFiles/thinc_workload.dir/web.cc.o"
  "CMakeFiles/thinc_workload.dir/web.cc.o.d"
  "libthinc_workload.a"
  "libthinc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
