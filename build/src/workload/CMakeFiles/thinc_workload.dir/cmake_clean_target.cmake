file(REMOVE_RECURSE
  "libthinc_workload.a"
)
