# Empty dependencies file for thinc_workload.
# This may be replaced when dependencies are built.
