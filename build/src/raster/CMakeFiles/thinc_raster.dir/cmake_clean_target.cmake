file(REMOVE_RECURSE
  "libthinc_raster.a"
)
