file(REMOVE_RECURSE
  "CMakeFiles/thinc_raster.dir/fant.cc.o"
  "CMakeFiles/thinc_raster.dir/fant.cc.o.d"
  "CMakeFiles/thinc_raster.dir/font.cc.o"
  "CMakeFiles/thinc_raster.dir/font.cc.o.d"
  "CMakeFiles/thinc_raster.dir/surface.cc.o"
  "CMakeFiles/thinc_raster.dir/surface.cc.o.d"
  "CMakeFiles/thinc_raster.dir/yuv.cc.o"
  "CMakeFiles/thinc_raster.dir/yuv.cc.o.d"
  "libthinc_raster.a"
  "libthinc_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinc_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
