# Empty dependencies file for thinc_raster.
# This may be replaced when dependencies are built.
