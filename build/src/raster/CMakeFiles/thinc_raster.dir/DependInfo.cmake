
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raster/fant.cc" "src/raster/CMakeFiles/thinc_raster.dir/fant.cc.o" "gcc" "src/raster/CMakeFiles/thinc_raster.dir/fant.cc.o.d"
  "/root/repo/src/raster/font.cc" "src/raster/CMakeFiles/thinc_raster.dir/font.cc.o" "gcc" "src/raster/CMakeFiles/thinc_raster.dir/font.cc.o.d"
  "/root/repo/src/raster/surface.cc" "src/raster/CMakeFiles/thinc_raster.dir/surface.cc.o" "gcc" "src/raster/CMakeFiles/thinc_raster.dir/surface.cc.o.d"
  "/root/repo/src/raster/yuv.cc" "src/raster/CMakeFiles/thinc_raster.dir/yuv.cc.o" "gcc" "src/raster/CMakeFiles/thinc_raster.dir/yuv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/thinc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
