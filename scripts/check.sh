#!/usr/bin/env bash
# Pre-merge gate: tier-1 correctness plus a sanitizer pass over the
# buffer/command/connection surface touched by the zero-copy data path.
#
#   1. Configure+build the `default` preset and run the full test suite
#      (the tier-1 bar: everything must pass).
#   2. Configure+build the `sanitize` preset (ASan+UBSan, build-asan/) and
#      run the buffer, command, command-queue, session-sharing, and
#      connection tests under the sanitizers.
#
# Usage: scripts/check.sh [--sanitize-only | --tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_TIER1=1
RUN_SANITIZE=1
case "${1:-}" in
  --sanitize-only) RUN_TIER1=0 ;;
  --tier1-only) RUN_SANITIZE=0 ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--sanitize-only | --tier1-only]" >&2; exit 2 ;;
esac

# Tests exercising the zero-copy buffer architecture end to end: buffer
# primitives, command encode caches, offscreen queue-copy CoW, shared-session
# frame reuse, and the segment-queue send path.
SANITIZE_FILTER='Buffer|Command|Connection|SessionShare|ExtractForCopy|Wire|Server|Stress|Fleet|Transport|Loopback|Relay|Cluster|Codec|Delta|Adapt|Device|Lossy|Trace'

if [[ "$RUN_TIER1" == 1 ]]; then
  echo "== tier-1: default preset build + full ctest =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS"
  ctest --preset default

  # Telemetry smoke: bench_micro's non-benchmark sections run a web workload
  # with all telemetry facilities off and again with them on, and THINC_CHECK
  # that wire bytes, virtual end time, and applied commands are identical —
  # the "telemetry can never change results" invariant, end to end.
  echo "== telemetry smoke: bench_micro invariant sections =="
  ./build/bench/bench_micro --benchmark_filter='^$'

  # Fleet smoke: an 8-session multi-tenant host run twice, with telemetry
  # fully off and fully on; THINC_CHECKs that wire bytes and virtual end
  # time are identical (shared-CPU/NIC arbitration must be unperturbed).
  echo "== fleet smoke: bench_fleet_capacity --smoke =="
  ./build/bench/bench_fleet_capacity --smoke

  # Transport smoke: a co-located web run over the loopback transport;
  # THINC_CHECKs that frame payload moved by reference (payload bytes > 0
  # with ZERO memcpy'd payload bytes — the zero-copy handoff gate).
  echo "== transport smoke: bench_transport --smoke =="
  ./build/bench/bench_transport --smoke

  # Simulator-core smoke: the lazy-delete heap queue must fire the exact
  # transcript of the std::map baseline on churn and cancel-heavy workloads,
  # and clear >= 2x the map's events/sec when cancels dominate.
  echo "== simcore smoke: bench_simcore --smoke =="
  ./build/bench/bench_simcore --smoke

  # Cluster smoke: a 2-host skewed cluster run twice (telemetry off, then
  # spans on); THINC_CHECKs that the migration schedule, per-session bytes,
  # framebuffer hashes, and virtual end time are identical across reruns,
  # that at least one live migration completes with zero lost updates, and
  # that blackout p95 stays under the full-refresh handoff bound.
  echo "== cluster smoke: bench_cluster --smoke =="
  ./build/bench/bench_cluster --smoke

  # Codec smoke: a WAN desktop-repaint run with adaptive selection off, then
  # on; THINC_CHECKs that the delta rung engages (hits > 0), that both arms
  # deliver pixel-exact framebuffers, and that delta moves fewer wire bytes
  # than intra at equal fidelity.
  echo "== codec smoke: bench_codec --smoke =="
  ./build/bench/bench_codec --smoke

  # Device smoke: the trace-driven device-class table run twice; THINC_CHECKs
  # that the JSON is byte-identical across reruns (determinism over lossy
  # paths included), that the phone negotiated its panel viewport, and that
  # its Gilbert-Elliott WAN path actually dropped segments.
  echo "== device smoke: bench_devices --smoke =="
  ./build/bench/bench_devices --smoke
fi

if [[ "$RUN_SANITIZE" == 1 ]]; then
  echo "== sanitize: ASan+UBSan over buffer/command/connection tests =="
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "$JOBS"
  ctest --preset sanitize -R "$SANITIZE_FILTER"
fi

echo "check.sh: all gates passed"
